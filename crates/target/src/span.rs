//! Causal span tracing across the decorator tower.
//!
//! A [`SpanContext`] is one shared timeline for a whole tower: the
//! evaluator opens a *root* span per evaluation (one trace ID each),
//! every AST node it enters opens a *node* span, and the decorators
//! below (retry, cache, supervise, trace) open child spans or instant
//! markers for the work they do on behalf of the node above. Because
//! the context is pushed down through [`crate::Target::set_span_context`]
//! at tower-construction time, a `retry` span recorded three layers
//! below the evaluator still knows exactly which AST node caused it —
//! its parent is whatever span was current when it opened.
//!
//! The data model is deliberately tiny: a bounded ring of completed
//! [`SpanRecord`]s plus a stack of open spans. Everything else —
//! Chrome trace-event JSON for Perfetto ([`chrome_trace_json`]),
//! folded-stacks flamegraph text ([`folded_stacks`]), the `.top`
//! aggregation ([`SpanSnapshot::aggregate`]) — is derived from that
//! ring after the fact.
//!
//! **Disabled spans are free.** Every entry point checks one relaxed
//! atomic load first; no lock is taken, no clock is read, no string is
//! built. The E15 bench asserts the disabled overhead stays under 5%.
//!
//! Memory cost: one completed span is a [`SpanRecord`] — five `u64`s,
//! a kind, a static name and a short detail string, ~100–140 bytes
//! with the ring's own overhead. The default ring keeps
//! [`DEFAULT_SPAN_CAPACITY`] records (~1 MiB worst case); `.set
//! trace_buf N` resizes it together with the event ring.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::trace::{TraceEvent, TraceOutcome};

/// Default bound on completed spans kept for export.
pub const DEFAULT_SPAN_CAPACITY: usize = 8192;

/// What layer of the system a span describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// The root of one evaluation (one per trace ID).
    Root,
    /// One AST-node generator activation span.
    Node,
    /// Value rendering (the `(display)` pseudo-node).
    Display,
    /// A wire-level operation span (e.g. one vectored read).
    Wire,
    /// One per-range child of a vectored read.
    Range,
    /// A retry layer span: one logical operation's retry episode.
    Retry,
    /// A cache-layer span: a miss fill or prefix probe.
    Cache,
    /// A supervision marker: breaker trip, fast-fail, recovery.
    Supervise,
    /// A prefetch-planner warm-up batch.
    Prefetch,
    /// An asynchronous-pipeline event: window submit, in-flight wait,
    /// queue-depth instant.
    Pipeline,
}

/// Every span kind, in display order.
pub const SPAN_KINDS: [SpanKind; 10] = [
    SpanKind::Root,
    SpanKind::Node,
    SpanKind::Display,
    SpanKind::Wire,
    SpanKind::Range,
    SpanKind::Retry,
    SpanKind::Cache,
    SpanKind::Supervise,
    SpanKind::Prefetch,
    SpanKind::Pipeline,
];

impl SpanKind {
    /// Short category label (used as the Perfetto `cat` field).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Root => "root",
            SpanKind::Node => "node",
            SpanKind::Display => "display",
            SpanKind::Wire => "wire",
            SpanKind::Range => "range",
            SpanKind::Retry => "retry",
            SpanKind::Cache => "cache",
            SpanKind::Supervise => "supervise",
            SpanKind::Prefetch => "prefetch",
            SpanKind::Pipeline => "pipeline",
        }
    }
}

/// One completed span, as kept in the ring.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// The evaluation (trace) this span belongs to.
    pub trace: u64,
    /// Unique span ID (never 0; 0 means "no span").
    pub id: u64,
    /// Parent span ID (0 for a root).
    pub parent: u64,
    /// Layer category.
    pub kind: SpanKind,
    /// Static name (node op label, `"retry"`, `"fill"`, …).
    pub name: &'static str,
    /// Short dynamic detail (expression text, address, outcome).
    pub detail: String,
    /// Start, nanoseconds since the context epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instant markers).
    pub dur_ns: u64,
}

impl SpanRecord {
    /// One folded-stack frame for this span (no `;`, which is the
    /// frame separator).
    fn frame(&self) -> String {
        let f = if self.detail.is_empty() {
            self.name.to_string()
        } else {
            format!("{} {}", self.name, self.detail)
        };
        f.replace(';', ",")
    }
}

struct ActiveSpan {
    trace: u64,
    id: u64,
    parent: u64,
    kind: SpanKind,
    name: &'static str,
    detail: String,
    start_ns: u64,
}

struct SpanInner {
    stack: Vec<ActiveSpan>,
    ring: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

struct SpanShared {
    enabled: AtomicBool,
    epoch: Instant,
    next_id: AtomicU64,
    trace_seq: AtomicU64,
    current_trace: AtomicU64,
    /// Top-of-stack span ID, mirrored out of the mutex so attribution
    /// reads (`current()`) stay a single relaxed load.
    current: AtomicU64,
    inner: Mutex<SpanInner>,
}

/// A cloneable handle onto one tower's span timeline.
///
/// Cloning shares the same timeline (it is an `Arc` inside), which is
/// how one context installed at the top of the tower is visible to
/// every layer below it and to the evaluator above.
#[derive(Clone)]
pub struct SpanContext(Arc<SpanShared>);

impl std::fmt::Debug for SpanContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanContext")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for SpanContext {
    fn default() -> SpanContext {
        SpanContext::new(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanContext {
    /// Creates a context with a ring bound of `capacity` completed
    /// spans, recording disabled.
    pub fn new(capacity: usize) -> SpanContext {
        SpanContext(Arc::new(SpanShared {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            trace_seq: AtomicU64::new(0),
            current_trace: AtomicU64::new(0),
            current: AtomicU64::new(0),
            inner: Mutex::new(SpanInner {
                stack: Vec::new(),
                ring: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }))
    }

    /// Whether two handles share one timeline.
    pub fn same_as(&self, other: &SpanContext) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Whether spans are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Spans recorded so far are kept.
    pub fn set_enabled(&self, on: bool) {
        self.0.enabled.store(on, Ordering::Relaxed);
    }

    /// Drops every completed and open span and resets the trace
    /// counter. The enabled flag and ring capacity are kept.
    pub fn clear(&self) {
        let mut inner = self.0.inner.lock().unwrap();
        inner.stack.clear();
        inner.ring.clear();
        inner.dropped = 0;
        self.0.current.store(0, Ordering::Relaxed);
        self.0.current_trace.store(0, Ordering::Relaxed);
        self.0.trace_seq.store(0, Ordering::Relaxed);
        self.0.next_id.store(1, Ordering::Relaxed);
    }

    /// Rebounds the completed-span ring, evicting oldest spans if the
    /// new bound is smaller.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.0.inner.lock().unwrap();
        inner.capacity = capacity.max(1);
        while inner.ring.len() > inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
    }

    /// The current ring bound.
    pub fn capacity(&self) -> usize {
        self.0.inner.lock().unwrap().capacity
    }

    /// Nanoseconds since this context's epoch (the timeline origin of
    /// every `start_ns`).
    pub fn now_ns(&self) -> u64 {
        self.0.epoch.elapsed().as_nanos() as u64
    }

    /// Starts a new trace (one evaluation), returning its ID (≥ 1).
    pub fn begin_trace(&self) -> u64 {
        let id = self.0.trace_seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.0.current_trace.store(id, Ordering::Relaxed);
        id
    }

    /// The trace ID of the evaluation in progress (0 if none yet).
    pub fn current_trace(&self) -> u64 {
        self.0.current_trace.load(Ordering::Relaxed)
    }

    /// The innermost open span's ID — what a layer below attributes
    /// its work to. One relaxed load; 0 when nothing is open.
    pub fn current(&self) -> u64 {
        self.0.current.load(Ordering::Relaxed)
    }

    /// Opens a span as a child of the current one. Returns its ID, or
    /// 0 when recording is disabled (pass that 0 straight back to
    /// [`SpanContext::pop`], which ignores it).
    pub fn push(&self, kind: SpanKind, name: &'static str, detail: impl FnOnce() -> String) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        self.push_at(kind, name, detail, self.now_ns())
    }

    /// Opens a span with an explicit (possibly back-dated) start time —
    /// the retry layer opens its span lazily at the *first* failure,
    /// back-dated to the operation start, so a clean call never touches
    /// the stack.
    pub fn push_at(
        &self,
        kind: SpanKind,
        name: &'static str,
        detail: impl FnOnce() -> String,
        start_ns: u64,
    ) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let id = self.0.next_id.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.0.inner.lock().unwrap();
        let parent = inner.stack.last().map_or(0, |s| s.id);
        inner.stack.push(ActiveSpan {
            trace: self.current_trace(),
            id,
            parent,
            kind,
            name,
            detail: detail(),
            start_ns,
        });
        self.0.current.store(id, Ordering::Relaxed);
        id
    }

    /// Closes span `id` (no-op for 0). Any span still open above it is
    /// closed too — a defensive unwind so one missed pop cannot skew
    /// the whole stack.
    pub fn pop(&self, id: u64) {
        if id == 0 {
            return;
        }
        let now = self.now_ns();
        let mut inner = self.0.inner.lock().unwrap();
        let Some(pos) = inner.stack.iter().rposition(|s| s.id == id) else {
            return;
        };
        while inner.stack.len() > pos {
            let s = inner.stack.pop().unwrap();
            let rec = SpanRecord {
                trace: s.trace,
                id: s.id,
                parent: s.parent,
                kind: s.kind,
                name: s.name,
                detail: s.detail,
                start_ns: s.start_ns,
                dur_ns: now.saturating_sub(s.start_ns),
            };
            if inner.ring.len() >= inner.capacity {
                inner.ring.pop_front();
                inner.dropped += 1;
            }
            inner.ring.push_back(rec);
        }
        let top = inner.stack.last().map_or(0, |s| s.id);
        self.0.current.store(top, Ordering::Relaxed);
    }

    /// Records a completed (zero-duration) marker as a child of the
    /// current span — breaker trips, fast-fails, per-range fan-out
    /// children. Returns the marker's span ID (0 when disabled).
    pub fn instant(
        &self,
        kind: SpanKind,
        name: &'static str,
        detail: impl FnOnce() -> String,
    ) -> u64 {
        self.record_closed(kind, name, detail, self.now_ns(), 0)
    }

    /// Records an already-completed span (explicit start and duration)
    /// as a child of the current span, without touching the stack.
    pub fn record_closed(
        &self,
        kind: SpanKind,
        name: &'static str,
        detail: impl FnOnce() -> String,
        start_ns: u64,
        dur_ns: u64,
    ) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let id = self.0.next_id.fetch_add(1, Ordering::Relaxed);
        let rec = SpanRecord {
            trace: self.current_trace(),
            id,
            parent: self.current(),
            kind,
            name,
            detail: detail(),
            start_ns,
            dur_ns,
        };
        let mut inner = self.0.inner.lock().unwrap();
        if inner.ring.len() >= inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(rec);
        id
    }

    /// A point-in-time copy of the timeline: completed spans (oldest
    /// first), still-open spans (outermost first), and the eviction
    /// count.
    pub fn snapshot(&self) -> SpanSnapshot {
        let now = self.now_ns();
        let inner = self.0.inner.lock().unwrap();
        SpanSnapshot {
            spans: inner.ring.iter().cloned().collect(),
            open: inner
                .stack
                .iter()
                .map(|s| SpanRecord {
                    trace: s.trace,
                    id: s.id,
                    parent: s.parent,
                    kind: s.kind,
                    name: s.name,
                    detail: s.detail.clone(),
                    start_ns: s.start_ns,
                    dur_ns: now.saturating_sub(s.start_ns),
                })
                .collect(),
            dropped: inner.dropped,
        }
    }
}

/// A frozen copy of a [`SpanContext`]'s timeline.
#[derive(Clone, Debug, Default)]
pub struct SpanSnapshot {
    /// Completed spans, in completion order (oldest first).
    pub spans: Vec<SpanRecord>,
    /// Spans still open at snapshot time, outermost first (their
    /// `dur_ns` is "so far").
    pub open: Vec<SpanRecord>,
    /// Completed spans evicted by the ring bound.
    pub dropped: u64,
}

impl SpanSnapshot {
    /// Total spans in the snapshot (completed + open).
    pub fn len(&self) -> usize {
        self.spans.len() + self.open.len()
    }

    /// Whether the snapshot holds no spans at all.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.open.is_empty()
    }

    /// Finds a span by ID (completed or still open).
    pub fn find(&self, id: u64) -> Option<&SpanRecord> {
        self.spans.iter().chain(&self.open).find(|s| s.id == id)
    }

    /// The ancestor chain of span `id`, root first, ending with `id`
    /// itself. `None` when the chain is broken (a parent was evicted
    /// or the ID is unknown) or cyclic.
    pub fn ancestry(&self, id: u64) -> Option<Vec<&SpanRecord>> {
        let mut chain = Vec::new();
        let mut cur = id;
        loop {
            let rec = self.find(cur)?;
            chain.push(rec);
            if rec.parent == 0 {
                chain.reverse();
                return Some(chain);
            }
            cur = rec.parent;
            if chain.len() > self.len() {
                return None; // cycle guard (cannot happen, but cheap)
            }
        }
    }

    /// Aggregated per-(kind, name[, detail]) costs for the `.top`
    /// view. Node spans keep their expression text as identity;
    /// everything else aggregates by kind + name. `self_ns` is the
    /// span's duration minus its children's (exclusive time).
    pub fn aggregate(&self) -> Vec<SpanAgg> {
        use std::collections::HashMap;
        let all: Vec<&SpanRecord> = self.spans.iter().chain(&self.open).collect();
        // Exclusive time: subtract each span's duration from its
        // parent's bucket.
        let mut child_ns: HashMap<u64, u64> = HashMap::new();
        for s in &all {
            if s.parent != 0 {
                *child_ns.entry(s.parent).or_insert(0) += s.dur_ns;
            }
        }
        let mut rows: HashMap<(SpanKind, &'static str, String), SpanAgg> = HashMap::new();
        for s in &all {
            let detail = if s.kind == SpanKind::Node || s.kind == SpanKind::Root {
                s.detail.clone()
            } else {
                String::new()
            };
            let row = rows
                .entry((s.kind, s.name, detail.clone()))
                .or_insert_with(|| SpanAgg {
                    kind: s.kind,
                    name: s.name,
                    detail,
                    count: 0,
                    total_ns: 0,
                    self_ns: 0,
                });
            row.count += 1;
            row.total_ns += s.dur_ns;
            let children = child_ns.get(&s.id).copied().unwrap_or(0);
            row.self_ns += s.dur_ns.saturating_sub(children.min(s.dur_ns));
        }
        let mut out: Vec<SpanAgg> = rows.into_values().collect();
        out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(b.count.cmp(&a.count)));
        out
    }
}

/// One row of [`SpanSnapshot::aggregate`].
#[derive(Clone, Debug)]
pub struct SpanAgg {
    /// Layer category.
    pub kind: SpanKind,
    /// Static name.
    pub name: &'static str,
    /// Expression text for node/root rows, empty otherwise.
    pub detail: String,
    /// Spans aggregated into this row.
    pub count: u64,
    /// Summed (inclusive) duration.
    pub total_ns: u64,
    /// Summed exclusive duration (children subtracted).
    pub self_ns: u64,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// Renders a span snapshot (plus the wire events attributed into it)
/// as Chrome trace-event JSON, loadable by Perfetto / `chrome://tracing`.
///
/// Spans become `"X"` complete events (`cat` = span kind); each trace
/// event becomes a zero-or-latency-wide `"X"` event under `cat:
/// "wire-event"`, carrying its span/trace attribution in `args`.
pub fn chrome_trace_json(snap: &SpanSnapshot, events: &[TraceEvent]) -> String {
    let mut out = String::from(
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
         {\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\",\
         \"args\":{\"name\":\"duel\"}},\
         {\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\
         \"args\":{\"name\":\"eval\"}}",
    );
    for s in snap.spans.iter().chain(&snap.open) {
        out.push_str(&format!(
            ",\n{{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"{}\",\"cat\":\"{}\",\
             \"ts\":{},\"dur\":{},\"args\":{{\"span\":{},\"parent\":{},\"trace\":{},\
             \"detail\":\"{}\"}}}}",
            esc(s.name),
            s.kind.name(),
            us(s.start_ns),
            us(s.dur_ns),
            s.id,
            s.parent,
            s.trace,
            esc(&s.detail),
        ));
    }
    for e in events {
        out.push_str(&format!(
            ",\n{{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"{}\",\"cat\":\"wire-event\",\
             \"ts\":{},\"dur\":{},\"args\":{{\"seq\":{},\"span\":{},\"trace\":{},\
             \"outcome\":\"{}\",\"detail\":\"{}\"}}}}",
            e.op.name(),
            us(e.ts_ns),
            us(e.nanos),
            e.seq,
            e.span,
            e.trace,
            e.outcome.name(),
            esc(&e.detail),
        ));
    }
    out.push_str("\n]}");
    out
}

/// What a folded-stacks line is weighted by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlameWeight {
    /// Observed wire latency in nanoseconds.
    WireNs,
    /// Backend calls (one per traced event).
    WireReads,
}

/// Renders wire events as folded flamegraph stacks: one line per
/// distinct span path, `frame;frame;...;op weight`, suitable for
/// `flamegraph.pl` / speedscope / inferno.
///
/// Events whose ancestor chain is broken (parent spans evicted from
/// the ring, or spans disabled) fold under a `(detached)` root so the
/// weights still sum to the whole session.
pub fn folded_stacks(snap: &SpanSnapshot, events: &[TraceEvent], weight: FlameWeight) -> String {
    use std::collections::BTreeMap;
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for e in events {
        let mut frames: Vec<String> = Vec::new();
        match snap.ancestry(e.span) {
            Some(chain) if e.span != 0 => {
                for s in chain {
                    frames.push(s.frame());
                }
            }
            _ => frames.push("(detached)".to_string()),
        }
        let leaf = if e.detail.is_empty() {
            e.op.name().to_string()
        } else {
            format!("{} {}", e.op.name(), e.detail).replace(';', ",")
        };
        frames.push(leaf);
        let w = match weight {
            FlameWeight::WireNs => e.nanos.max(1),
            FlameWeight::WireReads => 1,
        };
        *stacks.entry(frames.join(";")).or_insert(0) += w;
    }
    let mut out = String::new();
    for (stack, w) in stacks {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&w.to_string());
        out.push('\n');
    }
    out
}

/// Counts the traced wire events whose span chain resolves to a root
/// span — the E15 acceptance metric ("100% of traced wire events carry
/// a valid ancestor chain up to the eval root"). Returns
/// `(attributed, total)` over events recorded with tracing on.
pub fn attribution_coverage(snap: &SpanSnapshot, events: &[TraceEvent]) -> (usize, usize) {
    let mut ok = 0;
    for e in events {
        if e.span != 0 {
            if let Some(chain) = snap.ancestry(e.span) {
                if chain.first().is_some_and(|r| r.kind == SpanKind::Root) {
                    ok += 1;
                }
            }
        }
    }
    (ok, events.len())
}

#[allow(unused)]
fn _outcome_is_reexported(o: TraceOutcome) -> &'static str {
    o.name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceOp;

    fn ctx() -> SpanContext {
        let c = SpanContext::new(64);
        c.set_enabled(true);
        c
    }

    #[test]
    fn empty_ring_exports_valid_chrome_trace_json() {
        // Regression: `.trace export` / `--trace-perfetto` on a ring
        // with no spans and no events must still write a valid
        // (metadata-only) Chrome trace document, not a truncated one.
        let json = chrome_trace_json(&SpanSnapshot::default(), &[]);
        let doc = crate::json::Json::parse(&json).expect("empty export must be valid JSON");
        let Some(crate::json::Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("traceEvents array missing in {json}");
        };
        // Process/thread metadata only — every entry is a metadata
        // phase record, no X events.
        assert!(!events.is_empty());
        for e in events {
            assert_eq!(
                e.get("ph").and_then(crate::json::Json::as_str),
                Some("M"),
                "non-metadata event in empty export: {json}"
            );
        }
        assert_eq!(
            doc.get("displayTimeUnit")
                .and_then(crate::json::Json::as_str),
            Some("ms")
        );
    }

    #[test]
    fn disabled_context_records_nothing_and_returns_zero() {
        let c = SpanContext::new(16);
        assert_eq!(c.push(SpanKind::Node, "index", || "x[i]".into()), 0);
        assert_eq!(c.instant(SpanKind::Supervise, "trip", String::new), 0);
        c.pop(0);
        let s = c.snapshot();
        assert!(s.is_empty());
        assert_eq!(c.current(), 0);
    }

    #[test]
    fn push_pop_builds_parent_chains() {
        let c = ctx();
        let t = c.begin_trace();
        assert_eq!(t, 1);
        let root = c.push(SpanKind::Root, "eval", || "x[..4]".into());
        let node = c.push(SpanKind::Node, "index", || "x[i]".into());
        assert_eq!(c.current(), node);
        let wire = c.instant(SpanKind::Range, "range", || "0x1000+4".into());
        c.pop(node);
        assert_eq!(c.current(), root);
        c.pop(root);
        assert_eq!(c.current(), 0);
        let s = c.snapshot();
        assert_eq!(s.spans.len(), 3);
        let chain = s.ancestry(wire).unwrap();
        assert_eq!(
            chain.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![root, node, wire]
        );
        assert_eq!(chain[0].kind, SpanKind::Root);
        assert!(chain.iter().all(|r| r.trace == t));
    }

    #[test]
    fn pop_unwinds_missed_children_defensively() {
        let c = ctx();
        let a = c.push(SpanKind::Node, "a", String::new);
        let _b = c.push(SpanKind::Node, "b", String::new);
        c.pop(a); // b was never popped
        assert_eq!(c.current(), 0);
        assert_eq!(c.snapshot().spans.len(), 2);
    }

    #[test]
    fn ring_is_bounded_and_clear_resets() {
        let c = SpanContext::new(4);
        c.set_enabled(true);
        for _ in 0..10 {
            c.instant(SpanKind::Wire, "w", String::new);
        }
        let s = c.snapshot();
        assert_eq!(s.spans.len(), 4);
        assert_eq!(s.dropped, 6);
        c.clear();
        let s = c.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.dropped, 0);
        assert!(c.is_enabled(), "clear must not disable recording");
        c.set_capacity(2);
        for _ in 0..5 {
            c.instant(SpanKind::Wire, "w", String::new);
        }
        assert_eq!(c.snapshot().spans.len(), 2);
    }

    #[test]
    fn aggregate_computes_exclusive_time() {
        let c = ctx();
        let root = c.push_at(SpanKind::Root, "eval", || "e".into(), 0);
        let node = c.push_at(SpanKind::Node, "index", || "x[i]".into(), 10);
        // Force durations by hand-closing via record_closed children.
        c.record_closed(SpanKind::Wire, "w", String::new, 20, 5);
        c.pop(node);
        c.pop(root);
        let mut s = c.snapshot();
        // Make timing deterministic for the assertion.
        for r in &mut s.spans {
            if r.id == root {
                r.dur_ns = 100;
            }
            if r.id == node {
                r.dur_ns = 60;
            }
        }
        let rows = s.aggregate();
        let node_row = rows.iter().find(|r| r.kind == SpanKind::Node).unwrap();
        assert_eq!(node_row.count, 1);
        assert_eq!(node_row.total_ns, 60);
        assert_eq!(node_row.self_ns, 55); // 60 - 5 (wire child)
        let root_row = rows.iter().find(|r| r.kind == SpanKind::Root).unwrap();
        assert_eq!(root_row.self_ns, 40); // 100 - 60
    }

    #[test]
    fn chrome_export_is_json_with_span_args() {
        let c = ctx();
        c.begin_trace();
        let root = c.push(SpanKind::Root, "eval", || "x\"quote".into());
        c.pop(root);
        let ev = TraceEvent {
            seq: 0,
            op: TraceOp::GetBytes,
            detail: "0x1000+4".into(),
            outcome: TraceOutcome::Ok,
            nanos: 1500,
            ts_ns: 2000,
            trace: 1,
            span: root,
        };
        let json = chrome_trace_json(&c.snapshot(), &[ev]);
        let v = crate::json::Json::parse(&json).expect("export must be valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.items()).unwrap();
        assert!(events.len() >= 3, "metadata + span + wire event");
        assert!(json.contains("\"cat\":\"root\""), "{json}");
        assert!(json.contains("\"cat\":\"wire-event\""), "{json}");
        assert!(json.contains("x\\\"quote"), "{json}");
    }

    #[test]
    fn folded_stacks_fold_by_path_and_weight() {
        let c = ctx();
        c.begin_trace();
        let root = c.push(SpanKind::Root, "eval", || "x[..2]".into());
        let node = c.push(SpanKind::Node, "index", || "x[i]".into());
        let mk = |span: u64, nanos: u64| TraceEvent {
            seq: 0,
            op: TraceOp::GetBytes,
            detail: "0x1000+4".into(),
            outcome: TraceOutcome::Ok,
            nanos,
            ts_ns: 0,
            trace: 1,
            span,
        };
        c.pop(root);
        let snap = c.snapshot();
        let folded = folded_stacks(
            &snap,
            &[mk(node, 10), mk(node, 20), mk(0, 7)],
            FlameWeight::WireNs,
        );
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2, "{folded}");
        assert!(
            folded.contains("eval x[..2];index x[i];get_bytes 0x1000+4 30"),
            "{folded}"
        );
        assert!(
            folded.contains("(detached);get_bytes 0x1000+4 7"),
            "{folded}"
        );
        let by_reads = folded_stacks(&snap, &[mk(node, 10), mk(node, 20)], FlameWeight::WireReads);
        assert!(by_reads.contains(" 2\n"), "{by_reads}");
    }

    #[test]
    fn attribution_coverage_counts_rooted_chains() {
        let c = ctx();
        c.begin_trace();
        let root = c.push(SpanKind::Root, "eval", String::new);
        let node = c.push(SpanKind::Node, "index", String::new);
        c.pop(root);
        let snap = c.snapshot();
        let mk = |span: u64| TraceEvent {
            seq: 0,
            op: TraceOp::GetBytes,
            detail: String::new(),
            outcome: TraceOutcome::Ok,
            nanos: 1,
            ts_ns: 0,
            trace: 1,
            span,
        };
        let (ok, total) = attribution_coverage(&snap, &[mk(node), mk(root), mk(0)]);
        assert_eq!((ok, total), (2, 3));
    }
}
