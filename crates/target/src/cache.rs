//! A caching decorator over the narrow debugger interface.
//!
//! Every DUEL memory access — each element of `x[..100]`, each hop of
//! `head-->next` — crosses [`Target::get_bytes`] as an individual
//! byte-range, which over a wire protocol like gdb/MI means one full
//! round-trip per element. [`CachedTarget`] amortizes that cost at the
//! seam itself (the decorator the paper's layering argues for, not the
//! evaluator):
//!
//! * **Page cache** — `get_bytes` is served from page-granular cached
//!   reads. A miss fetches the whole aligned page in one backend call,
//!   so adjacent element reads coalesce; pages are evicted LRU once
//!   [`CacheConfig::max_pages`] is reached.
//! * **Lookup memoization** — `get_variable`, `lookup_typedef`,
//!   `lookup_struct`/`lookup_union`/`lookup_enum`, `has_function`,
//!   `frame_count` and `frame_info` results (including negative
//!   answers) are memoized until the next epoch.
//! * **Correctness** — `put_bytes` writes through and patches any
//!   cached page in place; `alloc_space` and `call_func` drop the page
//!   cache (a debuggee call can write anywhere); and
//!   [`CachedTarget::invalidate_all`] bumps the epoch when the target
//!   resumes. A failed page fetch (fault *or* transient error) caches
//!   nothing — the access falls back to an exact uncached read, so a
//!   flaky backend can never poison a page with partial data.
//!
//! Stacking order (see `DESIGN.md`): the cache sits *inside*
//! [`crate::RetryTarget`] (a retried operation re-enters the cache) and
//! *outside* [`crate::FaultTarget`] in tests (injected faults hit the
//! cache the way real backend faults would).

use crate::error::TargetResult;
use crate::iface::{
    CallValue, FrameInfo, OwnedRange, PipelineTicket, PrefetchCompletion, ReadRange, Target,
    VarInfo,
};
use crate::span::{SpanContext, SpanKind};
use duel_ctype::{Abi, EnumId, RecordId, TypeId, TypeTable};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Tuning knobs for a [`CachedTarget`].
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Page size in bytes for coalesced reads. Must be a power of two;
    /// [`CacheConfig::normalized`] rounds anything else up.
    pub page_size: u64,
    /// Maximum resident pages before LRU eviction kicks in.
    pub max_pages: usize,
    /// Whether caching is active. A disabled cache is a transparent
    /// pass-through that still counts backend traffic in its stats,
    /// which is what makes cached/uncached comparisons cheap.
    pub enabled: bool,
    /// Sequential readahead for vectored reads: when a
    /// [`Target::get_bytes_multi`] miss-coalesced fetch runs, this many
    /// extra pages following each requested page are fetched in the
    /// same wire turn. 0 (the default) disables readahead, which keeps
    /// the vectored path byte-for-byte equivalent to the scalar one.
    pub prefetch_pages: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            page_size: 64,
            max_pages: 1024,
            enabled: true,
            prefetch_pages: 0,
        }
    }
}

impl CacheConfig {
    /// A config with caching switched off (pass-through + counters).
    pub fn disabled() -> CacheConfig {
        CacheConfig {
            enabled: false,
            ..CacheConfig::default()
        }
    }

    /// Returns the config with `page_size` rounded up to a power of two
    /// (minimum 8) and `max_pages` at least 1.
    pub fn normalized(mut self) -> CacheConfig {
        self.page_size = self.page_size.max(8).next_power_of_two();
        self.max_pages = self.max_pages.max(1);
        self
    }
}

/// Counters describing what a [`CachedTarget`] did. All counters are
/// cumulative since construction or the last
/// [`CachedTarget::reset_stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Pages served from the cache during `get_bytes`.
    pub page_hits: u64,
    /// Pages that had to be fetched (or read around) from the backend.
    pub page_misses: u64,
    /// `get_bytes` calls issued to the wrapped backend.
    pub backend_reads: u64,
    /// Bytes actually transferred from the backend by those reads.
    pub wire_bytes: u64,
    /// Memoized symbol/type/frame lookups answered from the cache.
    pub lookup_hits: u64,
    /// Lookups that had to go to the backend.
    pub lookup_misses: u64,
    /// Writes forwarded (and patched into cached pages).
    pub write_throughs: u64,
    /// Epoch bumps via [`CachedTarget::invalidate_all`].
    pub invalidations: u64,
    /// Vectored reads ([`Target::get_bytes_multi`]) served.
    pub multi_reads: u64,
    /// Total ranges across those vectored reads.
    pub multi_ranges: u64,
    /// Missing pages fetched by a coalesced vectored backend call.
    pub pages_prefetched: u64,
    /// Extra sequential pages pulled in by
    /// [`CacheConfig::prefetch_pages`] readahead.
    pub readahead_pages: u64,
}

impl CacheStats {
    /// Hit rate over page accesses, in `[0, 1]`; `None` before any
    /// cached read happened.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.page_hits + self.page_misses;
        if total == 0 {
            None
        } else {
            Some(self.page_hits as f64 / total as f64)
        }
    }
}

#[derive(Debug)]
struct Page {
    bytes: Vec<u8>,
    stamp: u64,
}

/// Where the wire data of one submitted prefetch window lives.
#[derive(Debug)]
enum PendingRead {
    /// No actor below the cache: the vectored read already ran
    /// synchronously at submit time; `read_ns` is what it cost.
    Ready {
        done: Vec<(OwnedRange, TargetResult<()>)>,
        read_ns: u64,
    },
    /// In flight on the I/O actor below, reclaimable by ticket.
    Async(PipelineTicket),
}

/// One outstanding [`Target::prefetch_submit`] window, completed FIFO
/// by [`Target::prefetch_poll`].
#[derive(Debug)]
struct PendingPrefetch {
    read: PendingRead,
    /// Page generation at submit: if pages were dropped since (epoch
    /// bump, debuggee call), the completed window is discarded rather
    /// than resurrect pre-invalidation bytes.
    page_gen: u64,
    /// How many of the planned pages were demand misses (the rest are
    /// readahead) — keeps the stats split identical to the sync path.
    n_missing: usize,
    submitted: Instant,
}

/// A [`Target`] decorator that batches and memoizes backend traffic.
///
/// See the module docs for the caching and invalidation contract.
#[derive(Debug)]
pub struct CachedTarget<T: Target> {
    inner: T,
    cfg: CacheConfig,
    pages: HashMap<u64, Page>,
    tick: u64,
    epoch: u64,
    stats: CacheStats,
    vars: HashMap<String, Option<VarInfo>>,
    frame_vars: HashMap<(String, usize), Option<VarInfo>>,
    typedefs: HashMap<String, Option<TypeId>>,
    structs: HashMap<String, Option<RecordId>>,
    unions: HashMap<String, Option<RecordId>>,
    enums: HashMap<String, Option<EnumId>>,
    functions: HashMap<String, bool>,
    frames: HashMap<usize, Option<FrameInfo>>,
    frame_count: Option<usize>,
    /// Shared span timeline (installed by the trace layer above);
    /// miss fills and coalesced vectored fetches open `cache` spans.
    spans: Option<SpanContext>,
    /// Prefetch windows submitted but not yet polled, oldest first.
    prefetch_pending: VecDeque<PendingPrefetch>,
    /// Pages owned by an outstanding window; planning skips them so two
    /// in-flight windows can never fetch the same page twice.
    pending_pages: std::collections::HashSet<u64>,
    /// Bumped whenever cached pages are dropped; stale completions
    /// (older generation) are discarded instead of applied.
    page_gen: u64,
}

impl<T: Target> CachedTarget<T> {
    /// Wraps `inner` with the default config (64-byte pages, 1024-page
    /// LRU, enabled).
    pub fn new(inner: T) -> CachedTarget<T> {
        CachedTarget::with_config(inner, CacheConfig::default())
    }

    /// Wraps `inner` with an explicit config.
    pub fn with_config(inner: T, cfg: CacheConfig) -> CachedTarget<T> {
        CachedTarget {
            inner,
            cfg: cfg.normalized(),
            pages: HashMap::new(),
            tick: 0,
            epoch: 0,
            stats: CacheStats::default(),
            vars: HashMap::new(),
            frame_vars: HashMap::new(),
            typedefs: HashMap::new(),
            structs: HashMap::new(),
            unions: HashMap::new(),
            enums: HashMap::new(),
            functions: HashMap::new(),
            frames: HashMap::new(),
            frame_count: None,
            spans: None,
            prefetch_pending: VecDeque::new(),
            pending_pages: std::collections::HashSet::new(),
            page_gen: 0,
        }
    }

    /// Opens a `cache` span (0 when spans are off).
    fn span_open(&self, name: &'static str, detail: impl FnOnce() -> String) -> u64 {
        match &self.spans {
            Some(s) if s.is_enabled() => s.push(SpanKind::Cache, name, detail),
            _ => 0,
        }
    }

    /// Closes a span opened by [`CachedTarget::span_open`].
    fn span_close(&self, id: u64) {
        if id != 0 {
            if let Some(s) = &self.spans {
                s.pop(id);
            }
        }
    }

    /// The wrapped target.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped target. Anything that mutates the
    /// debuggee behind the cache's back (resuming execution, poking
    /// memory directly) must be followed by
    /// [`CachedTarget::invalidate_all`].
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets all counters to zero (the cache contents stay).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The resident pages, sorted by base address, with their cached
    /// bytes. Used by differential tests to assert the vectored and
    /// scalar read paths leave the cache in the identical state.
    pub fn resident_pages(&self) -> Vec<(u64, Vec<u8>)> {
        let mut out: Vec<(u64, Vec<u8>)> = self
            .pages
            .iter()
            .map(|(&base, p)| (base, p.bytes.clone()))
            .collect();
        out.sort_by_key(|(base, _)| *base);
        out
    }

    /// How many pages are resident right now (no byte copies — the
    /// cheap form of [`CachedTarget::resident_pages`] for telemetry
    /// snapshots).
    pub fn resident_page_count(&self) -> usize {
        self.pages.len()
    }

    /// The active config.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Whether caching is currently active.
    pub fn is_enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Enables or disables caching. Disabling drops all cached state,
    /// so stale data from before the toggle can never be served later.
    pub fn set_enabled(&mut self, on: bool) {
        if self.cfg.enabled != on {
            self.cfg.enabled = on;
            self.invalidate_all();
        }
    }

    /// Number of epoch bumps so far (each stop of the target is one
    /// cache generation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Drops every cached page and memoized lookup and bumps the
    /// epoch. Call this whenever the target resumes (or is mutated via
    /// [`CachedTarget::inner_mut`]): a stopped debuggee is immutable,
    /// a running one is not.
    pub fn invalidate_all(&mut self) {
        self.pages.clear();
        self.vars.clear();
        self.frame_vars.clear();
        self.typedefs.clear();
        self.structs.clear();
        self.unions.clear();
        self.enums.clear();
        self.functions.clear();
        self.frames.clear();
        self.frame_count = None;
        self.epoch += 1;
        self.page_gen += 1;
        self.stats.invalidations += 1;
    }

    /// Drops cached memory pages only (lookup memos survive: symbols
    /// and types do not move when the debuggee writes memory).
    fn drop_pages(&mut self) {
        self.pages.clear();
        self.page_gen += 1;
    }

    fn touch(&mut self, base: u64) {
        self.tick += 1;
        if let Some(p) = self.pages.get_mut(&base) {
            p.stamp = self.tick;
        }
    }

    fn insert_page(&mut self, base: u64, bytes: Vec<u8>) {
        if self.pages.len() >= self.cfg.max_pages && !self.pages.contains_key(&base) {
            // Evict the least-recently-used page. Linear scan is fine:
            // it only runs at capacity and max_pages bounds it.
            if let Some(&victim) = self
                .pages
                .iter()
                .min_by_key(|(_, p)| p.stamp)
                .map(|(b, _)| b)
            {
                self.pages.remove(&victim);
            }
        }
        self.tick += 1;
        self.pages.insert(
            base,
            Page {
                bytes,
                stamp: self.tick,
            },
        );
    }

    /// Reads `[addr, addr+len)` where the whole range lies inside the
    /// page based at `base`, going through the cache.
    fn read_within_page(&mut self, base: u64, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        let off = (addr - base) as usize;
        if let Some(p) = self.pages.get(&base) {
            // Partial pages (at the edge of mapped memory) may not
            // cover the tail of the request; anything they do cover is
            // a hit.
            if off + buf.len() <= p.bytes.len() {
                self.stats.page_hits += 1;
                self.touch(base);
                let p = &self.pages[&base];
                buf.copy_from_slice(&p.bytes[off..off + buf.len()]);
                return Ok(());
            }
            return self.read_exact_uncached(addr, buf);
        }
        self.stats.page_misses += 1;
        // A miss fill is real wire work done on the evaluator's
        // behalf: span it so the fetch (and any fault-probe bisection)
        // is attributed to the node above.
        let fill_span =
            self.span_open("fill", || format!("page 0x{base:x}+{}", self.cfg.page_size));
        let r = self.fill_page_miss(base, addr, buf);
        self.span_close(fill_span);
        r
    }

    /// The miss path of [`CachedTarget::read_within_page`]: fetch the
    /// aligned page (or probe its readable prefix) and serve the
    /// request.
    fn fill_page_miss(&mut self, base: u64, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        let off = (addr - base) as usize;
        let mut page = vec![0u8; self.cfg.page_size as usize];
        self.stats.backend_reads += 1;
        match self.inner.get_bytes(base, &mut page) {
            Ok(()) => {
                self.stats.wire_bytes += self.cfg.page_size;
                buf.copy_from_slice(&page[off..off + buf.len()]);
                self.insert_page(base, page);
                Ok(())
            }
            Err(e) if e.is_transient() => {
                // A sick backend must never seed the cache: fall back
                // to an exact, uncached read of just what was asked
                // for, so a partial or failed fetch cannot poison a
                // page. (The retry layer above, if any, re-enters.)
                self.read_exact_uncached(addr, buf)
            }
            Err(_) => {
                // A *fault* means the aligned page straddles unmapped
                // memory (typical at the edge of an arena or segment).
                // Binary-search the largest readable prefix once and
                // cache it as a partial page, so later reads inside
                // the mapped part still coalesce. A transient error
                // mid-probe caches nothing (the prefix it found is
                // suspect) and falls through to the exact read.
                let readable = match self.probe_prefix(base, &mut page) {
                    Ok(n) => n,
                    Err(_) => return self.read_exact_uncached(addr, buf),
                };
                if readable > 0 {
                    self.insert_page(base, page[..readable].to_vec());
                }
                if off + buf.len() <= readable {
                    let p = &self.pages[&base];
                    buf.copy_from_slice(&p.bytes[off..off + buf.len()]);
                    return Ok(());
                }
                // Not covered by the mapped prefix: the exact read
                // gives the backend the chance to answer (or to report
                // the honest per-access fault).
                self.read_exact_uncached(addr, buf)
            }
        }
    }

    /// One uncached pass-through read, with stats accounting.
    fn read_exact_uncached(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        self.stats.backend_reads += 1;
        self.inner.get_bytes(addr, buf)?;
        self.stats.wire_bytes += buf.len() as u64;
        Ok(())
    }

    /// Finds the largest `n` such that `[base, base+n)` is readable,
    /// by bisection, and leaves those bytes in `page[..n]`. Costs
    /// O(log page_size) backend reads, paid at most once per partial
    /// page per epoch.
    ///
    /// Only *faults* narrow the bisection: a fault is the arena's
    /// honest edge. A *transient* error mid-probe aborts the whole
    /// probe instead — treating a wire flake as "unreadable" would
    /// cache a permanently shrunk prefix for the rest of the epoch.
    /// The caller caches nothing on `Err` so a retry re-drives cleanly.
    fn probe_prefix(&mut self, base: u64, page: &mut [u8]) -> TargetResult<usize> {
        let mut lo = 0usize; // readable
        let mut hi = page.len(); // known unreadable (full fetch failed)
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            self.stats.backend_reads += 1;
            match self.inner.get_bytes(base, &mut page[..mid]) {
                Ok(()) => {
                    self.stats.wire_bytes += mid as u64;
                    lo = mid;
                }
                Err(e) if e.is_transient() => return Err(e),
                Err(_) => hi = mid,
            }
        }
        if lo == 0 {
            return Ok(0);
        }
        // A failed probe longer than `lo` may have scribbled over the
        // prefix before faulting; re-read it cleanly.
        self.stats.backend_reads += 1;
        match self.inner.get_bytes(base, &mut page[..lo]) {
            Ok(()) => {
                self.stats.wire_bytes += lo as u64;
                Ok(lo)
            }
            Err(e) if e.is_transient() => Err(e),
            Err(_) => Ok(0),
        }
    }
}

impl<T: Target> Target for CachedTarget<T> {
    fn abi(&self) -> &Abi {
        self.inner.abi()
    }

    fn types(&self) -> &TypeTable {
        self.inner.types()
    }

    fn types_mut(&mut self) -> &mut TypeTable {
        self.inner.types_mut()
    }

    fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        if buf.is_empty() {
            return Ok(());
        }
        if !self.cfg.enabled {
            self.stats.backend_reads += 1;
            self.inner.get_bytes(addr, buf)?;
            self.stats.wire_bytes += buf.len() as u64;
            return Ok(());
        }
        let ps = self.cfg.page_size;
        let mut pos = 0usize;
        let mut cur = addr;
        while pos < buf.len() {
            let base = cur & !(ps - 1);
            let in_page = ((base + ps) - cur) as usize;
            let take = in_page.min(buf.len() - pos);
            let end = pos + take;
            self.read_within_page(base, cur, &mut buf[pos..end])?;
            pos = end;
            cur += take as u64;
        }
        Ok(())
    }

    fn get_bytes_multi(&mut self, ranges: &mut [ReadRange<'_>]) -> Vec<TargetResult<()>> {
        self.stats.multi_reads += 1;
        self.stats.multi_ranges += ranges.len() as u64;
        if !self.cfg.enabled {
            // Transparent pass-through: still one inner vectored turn.
            self.stats.backend_reads += 1;
            let results = self.inner.get_bytes_multi(ranges);
            for (r, res) in ranges.iter().zip(&results) {
                if res.is_ok() {
                    self.stats.wire_bytes += r.buf.len() as u64;
                }
            }
            return results;
        }
        let ps = self.cfg.page_size;
        // Miss coalescing: collect every non-resident page any range
        // needs, then the sequential readahead tail, and fetch them
        // all in ONE inner vectored call.
        let mut planned = std::collections::HashSet::new();
        let mut missing: Vec<u64> = Vec::new();
        let pages_of = |addr: u64, len: usize| -> (u64, u64) {
            let first = addr & !(ps - 1);
            let last = (addr + len as u64 - 1) & !(ps - 1);
            (first, last)
        };
        for r in ranges.iter() {
            if r.buf.is_empty() {
                continue;
            }
            let (first, last) = pages_of(r.addr, r.buf.len());
            let mut base = first;
            loop {
                if !self.pages.contains_key(&base) && planned.insert(base) {
                    missing.push(base);
                }
                if base >= last {
                    break;
                }
                base += ps;
            }
        }
        let mut readahead: Vec<u64> = Vec::new();
        if self.cfg.prefetch_pages > 0 {
            for r in ranges.iter() {
                if r.buf.is_empty() {
                    continue;
                }
                let (_, last) = pages_of(r.addr, r.buf.len());
                for k in 1..=self.cfg.prefetch_pages as u64 {
                    let base = last.saturating_add(k * ps);
                    if !self.pages.contains_key(&base) && planned.insert(base) {
                        readahead.push(base);
                    }
                }
            }
        }
        let n_missing = missing.len();
        let fetch: Vec<u64> = missing.into_iter().chain(readahead).collect();
        if !fetch.is_empty() {
            let n_fetch = fetch.len();
            let fill_span = self.span_open("fill-multi", || {
                format!("{n_fetch} pages ({n_missing} missed)")
            });
            self.stats.backend_reads += 1; // one coalesced wire turn
            let mut bufs: Vec<Vec<u8>> = fetch.iter().map(|_| vec![0u8; ps as usize]).collect();
            let mut reqs: Vec<ReadRange<'_>> = bufs
                .iter_mut()
                .zip(&fetch)
                .map(|(b, &base)| ReadRange::new(base, b))
                .collect();
            let results = self.inner.get_bytes_multi(&mut reqs);
            drop(reqs);
            for (i, (&base, res)) in fetch.iter().zip(results).enumerate() {
                if res.is_ok() {
                    self.stats.wire_bytes += ps;
                    self.insert_page(base, std::mem::take(&mut bufs[i]));
                    if i < n_missing {
                        self.stats.pages_prefetched += 1;
                    } else {
                        self.stats.readahead_pages += 1;
                    }
                }
                // A failed page stays missing: the per-range serve
                // below re-drives it the scalar way (exact fallback
                // for transients, prefix probe for faults), so one
                // flaky page never fails the batch.
            }
            self.span_close(fill_span);
        }
        // Serve every range through the normal scalar path over the
        // warmed cache — identical results and identical cache state
        // to a scalar loop, minus the per-page wire turns.
        ranges
            .iter_mut()
            .map(|r| self.get_bytes(r.addr, r.buf))
            .collect()
    }

    fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
        let r = self.inner.put_bytes(addr, bytes);
        if !self.cfg.enabled {
            return r;
        }
        let ps = self.cfg.page_size;
        match r {
            Ok(()) => {
                // Write through: patch every cached page the write
                // overlaps so later reads see the new bytes.
                self.stats.write_throughs += 1;
                for (i, b) in bytes.iter().enumerate() {
                    let a = addr + i as u64;
                    let base = a & !(ps - 1);
                    if let Some(p) = self.pages.get_mut(&base) {
                        let off = (a - base) as usize;
                        if off < p.bytes.len() {
                            p.bytes[off] = *b;
                        }
                    }
                }
                Ok(())
            }
            Err(e) => {
                // The backend may have applied part of the write before
                // failing; drop the overlapped pages rather than guess.
                let first = addr & !(ps - 1);
                let last = addr.saturating_add(bytes.len() as u64) & !(ps - 1);
                let mut base = first;
                loop {
                    self.pages.remove(&base);
                    if base >= last {
                        break;
                    }
                    base += ps;
                }
                Err(e)
            }
        }
    }

    fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64> {
        // Mapping changes; drop pages so stale "unmapped" fallbacks
        // cannot linger. Symbols and types are unaffected.
        let r = self.inner.alloc_space(size, align);
        self.drop_pages();
        r
    }

    fn call_func(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue> {
        // A debuggee function can write anywhere; drop all pages
        // whether or not the call reports success.
        let r = self.inner.call_func(name, args);
        self.drop_pages();
        r
    }

    fn get_variable(&mut self, name: &str) -> Option<VarInfo> {
        if !self.cfg.enabled {
            return self.inner.get_variable(name);
        }
        if let Some(v) = self.vars.get(name) {
            self.stats.lookup_hits += 1;
            return v.clone();
        }
        self.stats.lookup_misses += 1;
        let v = self.inner.get_variable(name);
        self.vars.insert(name.to_string(), v.clone());
        v
    }

    fn get_variable_in_frame(&mut self, name: &str, frame: usize) -> Option<VarInfo> {
        if !self.cfg.enabled {
            return self.inner.get_variable_in_frame(name, frame);
        }
        let key = (name.to_string(), frame);
        if let Some(v) = self.frame_vars.get(&key) {
            self.stats.lookup_hits += 1;
            return v.clone();
        }
        self.stats.lookup_misses += 1;
        let v = self.inner.get_variable_in_frame(name, frame);
        self.frame_vars.insert(key, v.clone());
        v
    }

    fn lookup_typedef(&mut self, name: &str) -> Option<TypeId> {
        if !self.cfg.enabled {
            return self.inner.lookup_typedef(name);
        }
        if let Some(v) = self.typedefs.get(name) {
            self.stats.lookup_hits += 1;
            return *v;
        }
        self.stats.lookup_misses += 1;
        let v = self.inner.lookup_typedef(name);
        self.typedefs.insert(name.to_string(), v);
        v
    }

    fn lookup_struct(&mut self, tag: &str) -> Option<RecordId> {
        if !self.cfg.enabled {
            return self.inner.lookup_struct(tag);
        }
        if let Some(v) = self.structs.get(tag) {
            self.stats.lookup_hits += 1;
            return *v;
        }
        self.stats.lookup_misses += 1;
        let v = self.inner.lookup_struct(tag);
        self.structs.insert(tag.to_string(), v);
        v
    }

    fn lookup_union(&mut self, tag: &str) -> Option<RecordId> {
        if !self.cfg.enabled {
            return self.inner.lookup_union(tag);
        }
        if let Some(v) = self.unions.get(tag) {
            self.stats.lookup_hits += 1;
            return *v;
        }
        self.stats.lookup_misses += 1;
        let v = self.inner.lookup_union(tag);
        self.unions.insert(tag.to_string(), v);
        v
    }

    fn lookup_enum(&mut self, tag: &str) -> Option<EnumId> {
        if !self.cfg.enabled {
            return self.inner.lookup_enum(tag);
        }
        if let Some(v) = self.enums.get(tag) {
            self.stats.lookup_hits += 1;
            return *v;
        }
        self.stats.lookup_misses += 1;
        let v = self.inner.lookup_enum(tag);
        self.enums.insert(tag.to_string(), v);
        v
    }

    fn has_function(&mut self, name: &str) -> bool {
        if !self.cfg.enabled {
            return self.inner.has_function(name);
        }
        if let Some(v) = self.functions.get(name) {
            self.stats.lookup_hits += 1;
            return *v;
        }
        self.stats.lookup_misses += 1;
        let v = self.inner.has_function(name);
        self.functions.insert(name.to_string(), v);
        v
    }

    fn frame_count(&mut self) -> usize {
        if !self.cfg.enabled {
            return self.inner.frame_count();
        }
        if let Some(n) = self.frame_count {
            self.stats.lookup_hits += 1;
            return n;
        }
        self.stats.lookup_misses += 1;
        let n = self.inner.frame_count();
        self.frame_count = Some(n);
        n
    }

    fn frame_info(&mut self, n: usize) -> Option<FrameInfo> {
        if !self.cfg.enabled {
            return self.inner.frame_info(n);
        }
        if let Some(f) = self.frames.get(&n) {
            self.stats.lookup_hits += 1;
            return f.clone();
        }
        self.stats.lookup_misses += 1;
        let f = self.inner.frame_info(n);
        self.frames.insert(n, f.clone());
        f
    }

    fn is_mapped(&mut self, addr: u64, len: u64) -> bool {
        if self.cfg.enabled && len > 0 {
            // If resident pages fully cover the range, it was readable
            // when fetched — answer without a probe. Partial pages
            // only vouch for the prefix they actually hold.
            let ps = self.cfg.page_size;
            let first = addr & !(ps - 1);
            let last = (addr + len - 1) & !(ps - 1);
            let mut base = first;
            let all_cached = loop {
                let covered_to = base + self.pages.get(&base).map_or(0, |p| p.bytes.len() as u64);
                let slice_end = (addr + len).min(base + ps);
                if covered_to < slice_end {
                    break false;
                }
                if base >= last {
                    break true;
                }
                base += ps;
            };
            if all_cached {
                return true;
            }
        }
        self.inner.is_mapped(addr, len)
    }

    fn take_output(&mut self) -> String {
        self.inner.take_output()
    }

    fn trace_handle(&self) -> Option<crate::trace::TraceHandle> {
        self.inner.trace_handle()
    }

    fn set_span_context(&mut self, spans: &SpanContext) {
        self.spans = Some(spans.clone());
        self.inner.set_span_context(spans);
    }

    fn span_context(&self) -> Option<SpanContext> {
        self.inner.span_context()
    }

    fn staleness_handle(&self) -> Option<crate::supervise::StalenessHandle> {
        self.inner.staleness_handle()
    }

    fn prefetch_submit(&mut self, ranges: &[(u64, u64)]) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let ps = self.cfg.page_size;
        // Same plan as the demand vectored path: every non-resident
        // page any range needs, then the sequential readahead tail —
        // minus pages an earlier unpolled window already owns.
        let mut planned = std::collections::HashSet::new();
        let mut missing: Vec<u64> = Vec::new();
        for &(addr, len) in ranges {
            if len == 0 {
                continue;
            }
            let first = addr & !(ps - 1);
            let last = (addr + len - 1) & !(ps - 1);
            let mut base = first;
            loop {
                if !self.pages.contains_key(&base)
                    && !self.pending_pages.contains(&base)
                    && planned.insert(base)
                {
                    missing.push(base);
                }
                if base >= last {
                    break;
                }
                base += ps;
            }
        }
        let mut readahead: Vec<u64> = Vec::new();
        if self.cfg.prefetch_pages > 0 {
            for &(addr, len) in ranges {
                if len == 0 {
                    continue;
                }
                let last = (addr + len - 1) & !(ps - 1);
                for k in 1..=self.cfg.prefetch_pages as u64 {
                    let base = last.saturating_add(k * ps);
                    if !self.pages.contains_key(&base)
                        && !self.pending_pages.contains(&base)
                        && planned.insert(base)
                    {
                        readahead.push(base);
                    }
                }
            }
        }
        let n_missing = missing.len();
        let fetch: Vec<u64> = missing.into_iter().chain(readahead).collect();
        self.pending_pages.extend(fetch.iter().copied());
        let submitted = Instant::now();
        let read = if fetch.is_empty() {
            // Everything resident: still queue a (free) completion so
            // every submit has exactly one matching poll.
            PendingRead::Ready {
                done: Vec::new(),
                read_ns: 0,
            }
        } else {
            // The read is put on the wire right here in BOTH modes —
            // one wire turn per window, identical pipeline on or off.
            self.stats.backend_reads += 1;
            let owned: Vec<OwnedRange> = fetch
                .iter()
                .map(|&b| OwnedRange::new(b, ps as usize))
                .collect();
            if let Some(s) = &self.spans {
                let n = fetch.len();
                s.instant(SpanKind::Prefetch, "window-submit", || {
                    format!("{n} pages ({n_missing} missed)")
                });
            }
            match self.inner.read_submit(owned) {
                Some(ticket) => PendingRead::Async(ticket),
                None => {
                    // No I/O actor below: perform the vectored read now
                    // (the submit itself blocks; the poll is then free).
                    let owned: Vec<OwnedRange> = fetch
                        .iter()
                        .map(|&b| OwnedRange::new(b, ps as usize))
                        .collect();
                    let done = crate::pipeline::run_multi(&mut self.inner, owned);
                    PendingRead::Ready {
                        done,
                        read_ns: submitted.elapsed().as_nanos() as u64,
                    }
                }
            }
        };
        self.prefetch_pending.push_back(PendingPrefetch {
            read,
            page_gen: self.page_gen,
            n_missing,
            submitted,
        });
        true
    }

    fn prefetch_poll(&mut self) -> Option<PrefetchCompletion> {
        let p = self.prefetch_pending.pop_front()?;
        let poll_start = Instant::now();
        let (done, was_async, sync_read_ns) = match p.read {
            PendingRead::Ready { done, read_ns } => (done, false, read_ns),
            PendingRead::Async(ticket) => {
                let done = self.inner.read_poll(ticket).unwrap_or_default();
                (done, true, 0)
            }
        };
        let (wait_ns, overlap_ns) = if was_async {
            (
                poll_start.elapsed().as_nanos() as u64,
                poll_start.duration_since(p.submitted).as_nanos() as u64,
            )
        } else {
            (sync_read_ns, 0)
        };
        let planned = done.len() as u64;
        // The window's wire read ran below this layer (inline at submit
        // or on the I/O actor), so no outer trace decorator saw it as a
        // `get_bytes_multi`. This is the one place that still holds the
        // per-page outcomes, so the completed window is recorded here as
        // the same `multi_read` parent span + per-range children a
        // direct vectored call would have produced.
        let wire_span = match &self.spans {
            Some(s) if planned > 0 => {
                let declared: u64 = done.iter().map(|(o, _)| o.buf.len() as u64).sum();
                s.push(SpanKind::Wire, "multi_read", || {
                    format!("{planned} ranges, {declared}b")
                })
            }
            _ => 0,
        };
        // Discard (don't apply) a window submitted before the last page
        // drop: its bytes predate the invalidation.
        let stale = p.page_gen != self.page_gen;
        let (mut clean, mut failed, mut bytes) = (0u64, 0u64, 0u64);
        for (i, (o, r)) in done.into_iter().enumerate() {
            self.pending_pages.remove(&o.addr);
            if wire_span != 0 {
                if let Some(s) = &self.spans {
                    let (addr, len, ok) = (o.addr, o.buf.len(), r.is_ok());
                    s.instant(SpanKind::Range, "range", || {
                        format!("{addr:#x}+{len} {}", if ok { "ok" } else { "failed" })
                    });
                }
            }
            match r {
                Ok(()) => {
                    clean += 1;
                    bytes += o.buf.len() as u64;
                    if !stale {
                        self.stats.wire_bytes += o.buf.len() as u64;
                        if i < p.n_missing {
                            self.stats.pages_prefetched += 1;
                        } else {
                            self.stats.readahead_pages += 1;
                        }
                        self.insert_page(o.addr, o.buf);
                    }
                }
                // A failed page stays cold: the demand path re-drives
                // it scalar-wise (through the retry layer above), just
                // like a failed page in a demand vectored fetch.
                Err(_) => failed += 1,
            }
        }
        if wire_span != 0 {
            if let Some(s) = &self.spans {
                s.pop(wire_span);
            }
        }
        if let Some(s) = &self.spans {
            s.instant(SpanKind::Prefetch, "window-apply", || {
                format!(
                    "{clean} clean, {failed} failed{}",
                    if stale { ", stale" } else { "" }
                )
            });
        }
        Some(PrefetchCompletion {
            ranges: planned,
            clean,
            failed,
            bytes,
            wait_ns,
            overlap_ns,
            was_async,
        })
    }

    fn cache_page_size(&self) -> Option<u64> {
        Some(self.cfg.page_size)
    }

    fn pipeline_handle(&self) -> Option<crate::pipeline::PipelineHandle> {
        self.inner.pipeline_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    fn counted(cfg: CacheConfig) -> CachedTarget<crate::SimTarget> {
        CachedTarget::with_config(scenario::scan_array(), cfg)
    }

    #[test]
    fn adjacent_reads_coalesce_into_one_page_fetch() {
        let mut t = counted(CacheConfig {
            page_size: 64,
            ..CacheConfig::default()
        });
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        // 16 adjacent ints live in one 64-byte page.
        for i in 0..16u64 {
            t.get_bytes(x.addr + i * 4, &mut buf).unwrap();
        }
        assert_eq!(t.stats().backend_reads, 1, "{:?}", t.stats());
        assert_eq!(t.stats().page_hits, 15);
        assert_eq!(t.stats().wire_bytes, 64);
    }

    #[test]
    fn reads_crossing_pages_are_stitched_correctly() {
        let mut t = counted(CacheConfig {
            page_size: 8,
            ..CacheConfig::default()
        });
        let x = t.get_variable("x").unwrap();
        // Misaligned 12-byte read spanning 2-3 pages.
        let mut cached = [0u8; 12];
        t.get_bytes(x.addr + 6, &mut cached).unwrap();
        let mut direct = [0u8; 12];
        t.inner_mut().get_bytes(x.addr + 6, &mut direct).unwrap();
        assert_eq!(cached, direct);
    }

    #[test]
    fn unaligned_tail_falls_back_to_exact_read() {
        // The last int of x[60] sits near the end of the mapped arena;
        // an aligned page fetch may fault there while the exact read is
        // legal. The cache must transparently fall back.
        let mut t = counted(CacheConfig {
            page_size: 4096,
            ..CacheConfig::default()
        });
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 59 * 4, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 100 + 59);
    }

    #[test]
    fn write_through_is_visible_and_patches_pages() {
        let mut t = counted(CacheConfig::default());
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 7);
        let before = t.stats().backend_reads;
        t.put_bytes(x.addr + 12, &(-5i32).to_le_bytes()).unwrap();
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), -5);
        assert_eq!(
            t.stats().backend_reads,
            before,
            "write-through must not refetch the page"
        );
    }

    #[test]
    fn lru_evicts_oldest_page() {
        let mut t = counted(
            CacheConfig {
                page_size: 8,
                max_pages: 2,
                ..CacheConfig::default()
            }
            .normalized(),
        );
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr, &mut buf).unwrap(); // page A
        t.get_bytes(x.addr + 8, &mut buf).unwrap(); // page B
        t.get_bytes(x.addr, &mut buf).unwrap(); // touch A
        t.get_bytes(x.addr + 16, &mut buf).unwrap(); // page C evicts B
        assert_eq!(t.pages.len(), 2);
        let reads = t.stats().backend_reads;
        t.get_bytes(x.addr, &mut buf).unwrap(); // A still resident
        assert_eq!(t.stats().backend_reads, reads);
        t.get_bytes(x.addr + 8, &mut buf).unwrap(); // B was evicted
        assert_eq!(t.stats().backend_reads, reads + 1);
    }

    #[test]
    fn lookups_are_memoized_including_negatives() {
        let mut t = counted(CacheConfig::default());
        assert!(t.get_variable("x").is_some());
        assert!(t.get_variable("x").is_some());
        assert!(t.get_variable("nonesuch").is_none());
        assert!(t.get_variable("nonesuch").is_none());
        assert!(!t.has_function("nope"));
        assert!(!t.has_function("nope"));
        assert_eq!(t.stats().lookup_misses, 3);
        assert_eq!(t.stats().lookup_hits, 3);
    }

    #[test]
    fn invalidate_all_starts_a_new_epoch() {
        let mut t = counted(CacheConfig::default());
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr, &mut buf).unwrap();
        // Mutate behind the cache's back (a "resume").
        t.inner_mut()
            .put_bytes(x.addr, &(1234i32).to_le_bytes())
            .unwrap();
        t.get_bytes(x.addr, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 100, "stale by design until epoch");
        t.invalidate_all();
        t.get_bytes(x.addr, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 1234);
        assert_eq!(t.epoch(), 1);
    }

    #[test]
    fn call_func_drops_pages() {
        let mut t = counted(CacheConfig::default());
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr, &mut buf).unwrap();
        assert!(!t.pages.is_empty());
        let int = t.types_mut().prim(duel_ctype::Prim::Int);
        let abi = t.abi().clone();
        let arg = CallValue::from_u64(int, 3, 4, &abi).unwrap();
        t.call_func("abs", &[arg]).unwrap();
        assert!(t.pages.is_empty(), "a call may write anywhere");
    }

    #[test]
    fn disabled_cache_is_transparent_but_counts() {
        let mut t = counted(CacheConfig::disabled());
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        for i in 0..4u64 {
            t.get_bytes(x.addr + i * 4, &mut buf).unwrap();
        }
        assert_eq!(t.stats().backend_reads, 4);
        assert_eq!(t.stats().wire_bytes, 16);
        assert_eq!(t.stats().page_hits, 0);
    }

    #[test]
    fn toggling_off_drops_state() {
        let mut t = counted(CacheConfig::default());
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr, &mut buf).unwrap();
        t.set_enabled(false);
        assert!(t.pages.is_empty());
        // Mutations while disabled must be seen after re-enabling.
        t.inner_mut()
            .put_bytes(x.addr, &(77i32).to_le_bytes())
            .unwrap();
        t.set_enabled(true);
        t.get_bytes(x.addr, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 77);
    }

    #[test]
    fn transient_error_does_not_poison_the_cache() {
        use crate::fault::{FaultConfig, FaultTarget};
        let flaky = FaultTarget::new(scenario::scan_array(), FaultConfig::transient(2));
        let mut t = CachedTarget::new(flaky);
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        // First attempt: page fetch fails, exact fallback fails too.
        assert!(t.get_bytes(x.addr + 12, &mut buf).is_err());
        assert!(t.pages.is_empty(), "no page may be cached from a failure");
        // Backend recovered: the read now succeeds with correct bytes.
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 7);
    }

    #[test]
    fn is_mapped_can_answer_from_cache() {
        let mut t = counted(CacheConfig::default());
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr, &mut buf).unwrap();
        assert!(t.is_mapped(x.addr, 4));
        assert!(!t.is_mapped(0x10, 4));
    }

    #[test]
    fn cold_vectored_read_coalesces_to_one_backend_turn() {
        let mut t = counted(CacheConfig {
            page_size: 64,
            ..CacheConfig::default()
        });
        let x = t.get_variable("x").unwrap();
        let mut a = [0u8; 4];
        let mut b = [0u8; 4];
        let mut c = [0u8; 4];
        let mut ranges = [
            ReadRange::new(x.addr, &mut a),       // page 0
            ReadRange::new(x.addr + 72, &mut b),  // page 1
            ReadRange::new(x.addr + 188, &mut c), // page 2
        ];
        let rs = t.get_bytes_multi(&mut ranges);
        assert!(rs.iter().all(|r| r.is_ok()), "{rs:?}");
        assert_eq!(i32::from_le_bytes(a), 100);
        assert_eq!(i32::from_le_bytes(b), 9); // x[18] = 9
        assert_eq!(i32::from_le_bytes(c), 6); // x[47] = 6 (planted)
        let s = t.stats();
        assert_eq!(s.backend_reads, 1, "3 page misses, 1 wire turn: {s:?}");
        assert_eq!(s.multi_reads, 1);
        assert_eq!(s.multi_ranges, 3);
        assert_eq!(s.pages_prefetched, 3);
        // The warmed cache serves follow-up scalar reads for free.
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 4, &mut buf).unwrap();
        assert_eq!(t.stats().backend_reads, 1);
    }

    #[test]
    fn readahead_pulls_sequential_pages_in_the_same_turn() {
        let mut t = counted(CacheConfig {
            page_size: 64,
            prefetch_pages: 1,
            ..CacheConfig::default()
        });
        let x = t.get_variable("x").unwrap();
        let mut a = [0u8; 4];
        let mut ranges = [ReadRange::new(x.addr, &mut a)];
        let rs = t.get_bytes_multi(&mut ranges);
        assert_eq!(rs, vec![Ok(())]);
        let s = t.stats();
        assert_eq!(s.backend_reads, 1);
        assert_eq!(s.pages_prefetched, 1);
        assert_eq!(s.readahead_pages, 1);
        // The next sequential page is already resident.
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 64, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 116); // x[16]
        assert_eq!(t.stats().backend_reads, 1);
    }

    /// Delegates to a [`crate::SimTarget`] but injects exactly one
    /// transient backend error on the `flake_at`-th `get_bytes` call
    /// (1-based) — the minimal harness for a wire flake that lands in
    /// the middle of a prefix probe.
    struct FlakyProbe {
        inner: crate::SimTarget,
        ops: u64,
        flake_at: u64,
    }

    impl Target for FlakyProbe {
        fn abi(&self) -> &Abi {
            self.inner.abi()
        }
        fn types(&self) -> &TypeTable {
            self.inner.types()
        }
        fn types_mut(&mut self) -> &mut TypeTable {
            self.inner.types_mut()
        }
        fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
            self.ops += 1;
            if self.ops == self.flake_at {
                return Err(crate::TargetError::Backend("wire flake".into()));
            }
            self.inner.get_bytes(addr, buf)
        }
        fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
            self.inner.put_bytes(addr, bytes)
        }
        fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64> {
            self.inner.alloc_space(size, align)
        }
        fn call_func(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue> {
            self.inner.call_func(name, args)
        }
        fn get_variable(&mut self, name: &str) -> Option<VarInfo> {
            self.inner.get_variable(name)
        }
        fn get_variable_in_frame(&mut self, name: &str, frame: usize) -> Option<VarInfo> {
            self.inner.get_variable_in_frame(name, frame)
        }
        fn lookup_typedef(&mut self, name: &str) -> Option<TypeId> {
            self.inner.lookup_typedef(name)
        }
        fn lookup_struct(&mut self, tag: &str) -> Option<RecordId> {
            self.inner.lookup_struct(tag)
        }
        fn lookup_union(&mut self, tag: &str) -> Option<RecordId> {
            self.inner.lookup_union(tag)
        }
        fn lookup_enum(&mut self, tag: &str) -> Option<EnumId> {
            self.inner.lookup_enum(tag)
        }
        fn has_function(&mut self, name: &str) -> bool {
            self.inner.has_function(name)
        }
        fn frame_count(&mut self) -> usize {
            self.inner.frame_count()
        }
        fn frame_info(&mut self, n: usize) -> Option<FrameInfo> {
            self.inner.frame_info(n)
        }
        fn is_mapped(&mut self, addr: u64, len: u64) -> bool {
            self.inner.is_mapped(addr, len)
        }
        fn take_output(&mut self) -> String {
            self.inner.take_output()
        }
    }

    #[test]
    fn probe_flake_does_not_shrink_the_cached_prefix_for_the_epoch() {
        // scan_array's arena is 240 bytes at 0x1000: a 4096-byte page
        // fetch faults, so the cache bisects for the readable prefix.
        // Call 1 is the page fetch; call 2 is the first bisection step —
        // flake exactly there.
        let flaky = FlakyProbe {
            inner: scenario::scan_array(),
            ops: 0,
            flake_at: 2,
        };
        let mut t = CachedTarget::with_config(
            flaky,
            CacheConfig {
                page_size: 4096,
                ..CacheConfig::default()
            },
        );
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        // The flaked probe aborts; the exact fallback still answers,
        // and nothing suspect is cached.
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 7);
        assert!(
            t.resident_pages().is_empty(),
            "an aborted probe must cache nothing"
        );
        // The next read re-drives the probe cleanly and caches the full
        // 240-byte readable prefix — not a flake-shrunk one.
        t.get_bytes(x.addr + 16, &mut buf).unwrap();
        let pages = t.resident_pages();
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].0, x.addr & !4095);
        assert_eq!(pages[0].1.len(), 240, "full readable prefix cached");
        // Everything inside the arena is now served without the wire.
        let reads = t.stats().backend_reads;
        t.get_bytes(x.addr + 188, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 6);
        assert_eq!(t.stats().backend_reads, reads);
    }

    #[test]
    fn prefetch_seam_sync_fallback_warms_pages_in_one_turn() {
        let mut t = counted(CacheConfig {
            page_size: 64,
            ..CacheConfig::default()
        });
        let x = t.get_variable("x").unwrap();
        assert!(t.prefetch_submit(&[(x.addr, 128)]));
        let c = t.prefetch_poll().unwrap();
        assert!(!c.was_async);
        assert_eq!(c.ranges, 2);
        assert_eq!(c.clean, 2);
        assert_eq!(c.failed, 0);
        assert_eq!(c.bytes, 128);
        assert_eq!(t.stats().backend_reads, 1);
        assert_eq!(t.stats().pages_prefetched, 2);
        // Demand reads over the window are now hits.
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 64, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 116);
        assert_eq!(t.stats().backend_reads, 1);
        // A fully resident window completes for free.
        assert!(t.prefetch_submit(&[(x.addr, 128)]));
        let c = t.prefetch_poll().unwrap();
        assert_eq!(c.ranges, 0);
        assert_eq!(t.stats().backend_reads, 1);
        assert!(t.prefetch_poll().is_none());
    }

    #[test]
    fn prefetch_seam_rides_the_io_actor_when_present() {
        let mut t = CachedTarget::with_config(
            crate::pipeline::AsyncTarget::spawned(scenario::scan_array()),
            CacheConfig {
                page_size: 64,
                ..CacheConfig::default()
            },
        );
        let x = t.get_variable("x").unwrap();
        assert!(t.prefetch_submit(&[(x.addr, 128)]));
        let c = t.prefetch_poll().unwrap();
        assert!(c.was_async);
        assert_eq!(c.clean, 2);
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 64, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 116);
        assert_eq!(
            t.stats().backend_reads,
            1,
            "the window was the only wire read"
        );
        let h = t.pipeline_handle().unwrap();
        assert_eq!(h.stats().submits, 1);
        assert_eq!(h.stats().completions, 1);
    }

    #[test]
    fn async_and_sync_prefetch_leave_identical_cache_state() {
        let cfg = CacheConfig {
            page_size: 64,
            ..CacheConfig::default()
        };
        let mut sync_t = CachedTarget::with_config(
            crate::pipeline::AsyncTarget::new(scenario::scan_array()),
            cfg.clone(),
        );
        let mut async_t = CachedTarget::with_config(
            crate::pipeline::AsyncTarget::spawned(scenario::scan_array()),
            cfg,
        );
        for t in [&mut sync_t, &mut async_t] {
            let x = t.get_variable("x").unwrap();
            assert!(t.prefetch_submit(&[(x.addr, 100)]));
            let _ = t.prefetch_poll().unwrap();
            assert!(t.prefetch_submit(&[(x.addr + 100, 100)]));
            let _ = t.prefetch_poll().unwrap();
        }
        assert_eq!(sync_t.resident_pages(), async_t.resident_pages());
        assert_eq!(sync_t.stats().backend_reads, async_t.stats().backend_reads);
        assert_eq!(
            sync_t.stats().pages_prefetched,
            async_t.stats().pages_prefetched
        );
    }

    #[test]
    fn stale_prefetch_completions_are_discarded() {
        let mut t = CachedTarget::with_config(
            crate::pipeline::AsyncTarget::spawned(scenario::scan_array()),
            CacheConfig {
                page_size: 64,
                ..CacheConfig::default()
            },
        );
        let x = t.get_variable("x").unwrap();
        assert!(t.prefetch_submit(&[(x.addr, 64)]));
        // The debuggee "resumes" before the window lands: its bytes
        // must not be resurrected into the new epoch.
        t.invalidate_all();
        let c = t.prefetch_poll().unwrap();
        assert_eq!(c.clean, 1, "the wire read itself succeeded");
        assert!(t.resident_pages().is_empty(), "but nothing was applied");
        assert_eq!(t.stats().pages_prefetched, 0);
    }

    #[test]
    fn outstanding_windows_do_not_refetch_each_others_pages() {
        let mut t = counted(CacheConfig {
            page_size: 64,
            ..CacheConfig::default()
        });
        let x = t.get_variable("x").unwrap();
        assert!(t.prefetch_submit(&[(x.addr, 64)]));
        // Overlapping window submitted before the first is polled.
        assert!(t.prefetch_submit(&[(x.addr, 128)]));
        let c0 = t.prefetch_poll().unwrap();
        let c1 = t.prefetch_poll().unwrap();
        assert_eq!(c0.ranges, 1);
        assert_eq!(c1.ranges, 1, "page 0 already owned by window 0");
        assert_eq!(t.stats().backend_reads, 2);
    }
}
