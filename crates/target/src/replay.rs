//! Offline replay: a [`Target`] served entirely from a capture file.
//!
//! `ReplayTarget` never talks to a live backend — every answer comes
//! from the recorded event stream, in one of two modes:
//!
//! * **Strict** ([`ReplayMode::Strict`]) — the session must issue
//!   exactly the recorded call sequence. Each call is matched against
//!   the next capture event and answered with the recorded reply
//!   (including recorded faults and transients, so a replayed flaky
//!   session replays its flakiness deterministically). The first
//!   mismatch produces a symbolic [`Divergence`] report — expected vs
//!   actual call, position in the capture — and the report is *sticky*:
//!   the stream stops advancing, so postmortem tooling sees the original
//!   point of divergence, not a cascade.
//! * **Permissive** ([`ReplayMode::Permissive`]) — the capture is
//!   pre-scanned into a sparse memory image plus symbol/frame/function
//!   tables, and calls are answered best-effort from that frozen state.
//!   This is what lets *new* expressions — ones the recorded session
//!   never evaluated — run against a capture: any byte the recording
//!   ever observed is addressable, and anything outside the image is an
//!   honest [`TargetError::IllegalMemory`] fault.
//!
//! Type identity comes from the capture's snapshot (footer if present,
//! else header), restored via `TypeTable::from_snapshot`, so recorded
//! raw type ids resolve to the same types on replay and re-interning by
//! the evaluator is idempotent.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::capture::{Capture, CaptureCall, CaptureEvent, CaptureReply};
use crate::error::{TargetError, TargetResult};
use crate::iface::{CallValue, FrameInfo, ReadRange, Target, VarInfo, VarKind};
use duel_ctype::{Abi, EnumId, RecordId, TypeId, TypeTable};

/// How a [`ReplayTarget`] answers calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayMode {
    /// Sequential event matching; divergence is an error.
    Strict,
    /// Best-effort service from a rebuilt sparse image.
    Permissive,
}

/// A symbolic report of the first strict-mode divergence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Zero-based event position where the session diverged.
    pub at: u64,
    /// What the capture holds at that position (`"end of capture"` if
    /// the session outran the recording).
    pub expected: String,
    /// The call the session actually issued.
    pub got: String,
}

impl Divergence {
    /// Renders the report as one line.
    pub fn render(&self) -> String {
        format!(
            "replay divergence at event {}: capture has {}, session issued {}",
            self.at, self.expected, self.got
        )
    }

    fn to_error(&self) -> TargetError {
        TargetError::ReplayDivergence {
            at: self.at,
            expected: self.expected.clone(),
            got: self.got.clone(),
        }
    }
}

/// A function-call memo key: name plus raw-typed argument bytes.
type CallKey = (String, Vec<(u32, Vec<u8>)>);

/// The permissive-mode image rebuilt from a capture.
#[derive(Debug, Default)]
struct Image {
    /// Sparse debuggee memory: every byte any recorded read returned or
    /// any recorded write stored, applied in event order.
    memory: BTreeMap<u64, u8>,
    /// Recorded global variable resolutions.
    globals: HashMap<String, VarInfo>,
    /// Recorded per-frame variable resolutions.
    frame_vars: HashMap<(String, u64), VarInfo>,
    /// Names the capture proves callable.
    functions: HashSet<String>,
    /// Memoized recorded call results, keyed by name + argument bytes.
    call_results: HashMap<CallKey, CallValue>,
    /// Last recorded frame count.
    frame_count: u64,
    /// Recorded frame metadata.
    frames: HashMap<u64, FrameInfo>,
    /// Recorded `is_mapped` probes, exact-match.
    mapped_probes: HashMap<(u64, u64), bool>,
    /// First address safely beyond everything the capture touched;
    /// permissive `alloc_space` bumps from here.
    alloc_next: u64,
}

fn call_key(name: &str, args: &[CallValue]) -> CallKey {
    (
        name.to_string(),
        args.iter().map(|a| (a.ty.raw(), a.bytes.clone())).collect(),
    )
}

impl Image {
    fn build(events: &[CaptureEvent]) -> Image {
        let mut img = Image::default();
        let mut high_water = 0u64;
        let mut touch = |addr: u64, len: u64| {
            high_water = high_water.max(addr.saturating_add(len));
        };
        for ev in events {
            match (&ev.call, &ev.reply) {
                (CaptureCall::GetBytes { addr, .. }, CaptureReply::Bytes(bytes)) => {
                    touch(*addr, bytes.len() as u64);
                    for (i, b) in bytes.iter().enumerate() {
                        img.memory.insert(addr + i as u64, *b);
                    }
                }
                (CaptureCall::PutBytes { addr, data }, CaptureReply::Unit) => {
                    touch(*addr, data.len() as u64);
                    for (i, b) in data.iter().enumerate() {
                        img.memory.insert(addr + i as u64, *b);
                    }
                }
                (CaptureCall::AllocSpace { size, .. }, CaptureReply::Addr(a)) => {
                    touch(*a, *size);
                }
                (CaptureCall::CallFunc { name, args }, CaptureReply::Value(v)) => {
                    img.functions.insert(name.clone());
                    img.call_results.insert(call_key(name, args), v.clone());
                }
                (CaptureCall::GetVariable { name, frame }, CaptureReply::Var(Some(v))) => {
                    touch(v.addr, 1);
                    match frame {
                        None => {
                            img.globals.insert(name.clone(), v.clone());
                        }
                        Some(f) => {
                            img.frame_vars.insert((name.clone(), *f), v.clone());
                        }
                    }
                }
                (CaptureCall::HasFunction { name }, CaptureReply::Flag(true)) => {
                    img.functions.insert(name.clone());
                }
                (CaptureCall::FrameCount, CaptureReply::Count(n)) => {
                    img.frame_count = *n;
                }
                (CaptureCall::FrameInfo { n }, CaptureReply::Frame(Some(f))) => {
                    img.frames.insert(*n, f.clone());
                }
                (CaptureCall::IsMapped { addr, len }, CaptureReply::Flag(b)) => {
                    img.mapped_probes.insert((*addr, *len), *b);
                }
                (CaptureCall::MultiRead { ranges }, CaptureReply::Multi(rs)) => {
                    for ((addr, _), res) in ranges.iter().zip(rs) {
                        if let Ok(bytes) = res {
                            touch(*addr, bytes.len() as u64);
                            for (i, b) in bytes.iter().enumerate() {
                                img.memory.insert(addr + i as u64, *b);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        // Serve fresh allocations from a page-aligned region the
        // recorded session never touched.
        img.alloc_next = (high_water.max(0x1000) + 0xFFFF) & !0xFFF;
        img
    }

    fn read(&self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        for (i, slot) in buf.iter_mut().enumerate() {
            match self.memory.get(&(addr + i as u64)) {
                Some(b) => *slot = *b,
                None => {
                    return Err(TargetError::IllegalMemory {
                        addr,
                        len: buf.len() as u64,
                    })
                }
            }
        }
        Ok(())
    }

    fn covered(&self, addr: u64, len: u64) -> bool {
        (0..len).all(|i| self.memory.contains_key(&(addr + i)))
    }
}

/// A [`Target`] that answers entirely from a parsed [`Capture`].
#[derive(Debug)]
pub struct ReplayTarget {
    abi: Abi,
    types: TypeTable,
    mode: ReplayMode,
    events: Vec<CaptureEvent>,
    pos: usize,
    divergence: Option<Divergence>,
    image: Option<Image>,
    /// Backend/scenario labels from the capture header, for status.
    backend: String,
    scenario: String,
}

impl ReplayTarget {
    /// Builds a replay target from a parsed capture.
    pub fn from_capture(cap: Capture, mode: ReplayMode) -> ReplayTarget {
        let types = TypeTable::from_snapshot(cap.types());
        let image = match mode {
            ReplayMode::Strict => None,
            ReplayMode::Permissive => Some(Image::build(&cap.events)),
        };
        ReplayTarget {
            abi: cap.header.abi.clone(),
            types,
            mode,
            events: cap.events,
            pos: 0,
            divergence: None,
            image,
            backend: cap.header.backend,
            scenario: cap.header.scenario,
        }
    }

    /// Loads a capture file and builds a replay target from it.
    pub fn load(path: &str, mode: ReplayMode) -> Result<ReplayTarget, String> {
        Ok(ReplayTarget::from_capture(Capture::load(path)?, mode))
    }

    /// The replay mode.
    pub fn mode(&self) -> ReplayMode {
        self.mode
    }

    /// Backend label recorded in the capture header.
    pub fn backend_label(&self) -> &str {
        &self.backend
    }

    /// Scenario label recorded in the capture header.
    pub fn scenario_label(&self) -> &str {
        &self.scenario
    }

    /// Events consumed so far (strict mode).
    pub fn events_consumed(&self) -> usize {
        self.pos
    }

    /// Total events in the capture.
    pub fn events_total(&self) -> usize {
        self.events.len()
    }

    /// The sticky first-divergence report, if strict replay diverged.
    pub fn divergence(&self) -> Option<&Divergence> {
        self.divergence.as_ref()
    }

    /// Strict-mode engine: match `call` against the next recorded event
    /// and hand back the recorded reply, or report divergence.
    fn advance(&mut self, call: CaptureCall) -> Result<CaptureReply, Divergence> {
        if let Some(d) = &self.divergence {
            // Sticky: after the first divergence the stream is frozen
            // so the original report survives any follow-on calls.
            return Err(d.clone());
        }
        let expected = match self.events.get(self.pos) {
            None => {
                let d = Divergence {
                    at: self.pos as u64,
                    expected: "end of capture".into(),
                    got: format!("{} {}", call.op_name(), call.detail()),
                };
                self.divergence = Some(d.clone());
                return Err(d);
            }
            Some(ev) => ev,
        };
        if expected.call != call {
            let d = Divergence {
                at: self.pos as u64,
                expected: format!("{} {}", expected.call.op_name(), expected.call.detail()),
                got: format!("{} {}", call.op_name(), call.detail()),
            };
            self.divergence = Some(d.clone());
            return Err(d);
        }
        let reply = expected.reply.clone();
        self.pos += 1;
        Ok(reply)
    }

    fn strict_result<R>(
        &mut self,
        call: CaptureCall,
        extract: impl FnOnce(CaptureReply) -> Option<R>,
    ) -> TargetResult<R> {
        match self.advance(call) {
            Err(d) => Err(d.to_error()),
            Ok(CaptureReply::Err(e)) => Err(e),
            Ok(reply) => extract(reply).ok_or_else(|| {
                TargetError::Backend("capture reply shape does not match its call".into())
            }),
        }
    }

    fn strict_plain<R>(
        &mut self,
        call: CaptureCall,
        extract: impl FnOnce(CaptureReply) -> Option<R>,
        fallback: R,
    ) -> R {
        match self.advance(call) {
            Err(_) => fallback,
            Ok(reply) => extract(reply).unwrap_or(fallback),
        }
    }
}

impl Target for ReplayTarget {
    fn abi(&self) -> &Abi {
        &self.abi
    }

    fn types(&self) -> &TypeTable {
        &self.types
    }

    fn types_mut(&mut self) -> &mut TypeTable {
        &mut self.types
    }

    fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        match self.mode {
            ReplayMode::Strict => {
                let len = buf.len() as u64;
                let bytes =
                    self.strict_result(CaptureCall::GetBytes { addr, len }, |r| match r {
                        CaptureReply::Bytes(b) => Some(b),
                        _ => None,
                    })?;
                if bytes.len() != buf.len() {
                    return Err(TargetError::Truncated {
                        addr,
                        wanted: len,
                        got: bytes.len() as u64,
                    });
                }
                buf.copy_from_slice(&bytes);
                Ok(())
            }
            ReplayMode::Permissive => self.image.as_ref().unwrap().read(addr, buf),
        }
    }

    fn get_bytes_multi(&mut self, ranges: &mut [ReadRange<'_>]) -> Vec<TargetResult<()>> {
        match self.mode {
            ReplayMode::Strict => {
                let call = CaptureCall::MultiRead {
                    ranges: ranges
                        .iter()
                        .map(|r| (r.addr, r.buf.len() as u64))
                        .collect(),
                };
                let replies = match self.advance(call) {
                    Err(d) => {
                        let e = d.to_error();
                        return ranges.iter().map(|_| Err(e.clone())).collect();
                    }
                    Ok(CaptureReply::Multi(rs)) if rs.len() == ranges.len() => rs,
                    Ok(_) => {
                        let e = TargetError::Backend(
                            "capture reply shape does not match its call".into(),
                        );
                        return ranges.iter().map(|_| Err(e.clone())).collect();
                    }
                };
                ranges
                    .iter_mut()
                    .zip(replies)
                    .map(|(r, reply)| match reply {
                        Ok(bytes) if bytes.len() == r.buf.len() => {
                            r.buf.copy_from_slice(&bytes);
                            Ok(())
                        }
                        Ok(bytes) => Err(TargetError::Truncated {
                            addr: r.addr,
                            wanted: r.buf.len() as u64,
                            got: bytes.len() as u64,
                        }),
                        Err(e) => Err(e),
                    })
                    .collect()
            }
            ReplayMode::Permissive => {
                let img = self.image.as_ref().unwrap();
                ranges.iter_mut().map(|r| img.read(r.addr, r.buf)).collect()
            }
        }
    }

    fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
        match self.mode {
            ReplayMode::Strict => self.strict_result(
                CaptureCall::PutBytes {
                    addr,
                    data: bytes.to_vec(),
                },
                |r| match r {
                    CaptureReply::Unit => Some(()),
                    _ => None,
                },
            ),
            ReplayMode::Permissive => {
                // The frozen image is a private copy; writes land in it
                // so follow-up reads in the same postmortem session see
                // them, without any live target involved.
                let img = self.image.as_mut().unwrap();
                for (i, b) in bytes.iter().enumerate() {
                    img.memory.insert(addr + i as u64, *b);
                }
                Ok(())
            }
        }
    }

    fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64> {
        match self.mode {
            ReplayMode::Strict => {
                self.strict_result(CaptureCall::AllocSpace { size, align }, |r| match r {
                    CaptureReply::Addr(a) => Some(a),
                    _ => None,
                })
            }
            ReplayMode::Permissive => {
                let img = self.image.as_mut().unwrap();
                let align = align.max(1);
                let addr = img.alloc_next.div_ceil(align) * align;
                img.alloc_next = addr + size.max(1);
                // Fresh scratch space reads back as zeroes.
                for i in 0..size {
                    img.memory.insert(addr + i, 0);
                }
                Ok(addr)
            }
        }
    }

    fn call_func(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue> {
        match self.mode {
            ReplayMode::Strict => self.strict_result(
                CaptureCall::CallFunc {
                    name: name.to_string(),
                    args: args.to_vec(),
                },
                |r| match r {
                    CaptureReply::Value(v) => Some(v),
                    _ => None,
                },
            ),
            ReplayMode::Permissive => {
                let img = self.image.as_ref().unwrap();
                if let Some(v) = img.call_results.get(&call_key(name, args)) {
                    return Ok(v.clone());
                }
                if img.functions.contains(name) {
                    Err(TargetError::CallFailed {
                        func: name.to_string(),
                        reason: "call with these arguments is not in the capture \
                                 (replay cannot execute debuggee code)"
                            .into(),
                    })
                } else {
                    Err(TargetError::UnknownFunction(name.to_string()))
                }
            }
        }
    }

    fn get_variable(&mut self, name: &str) -> Option<VarInfo> {
        match self.mode {
            ReplayMode::Strict => self.strict_plain(
                CaptureCall::GetVariable {
                    name: name.to_string(),
                    frame: None,
                },
                |r| match r {
                    CaptureReply::Var(v) => Some(v),
                    _ => None,
                },
                None,
            ),
            ReplayMode::Permissive => {
                let img = self.image.as_ref().unwrap();
                img.globals.get(name).cloned().or_else(|| {
                    // A local recorded in the innermost frame still
                    // resolves by bare name, mirroring live shadowing.
                    img.frame_vars.get(&(name.to_string(), 0)).cloned()
                })
            }
        }
    }

    fn get_variable_in_frame(&mut self, name: &str, frame: usize) -> Option<VarInfo> {
        match self.mode {
            ReplayMode::Strict => self.strict_plain(
                CaptureCall::GetVariable {
                    name: name.to_string(),
                    frame: Some(frame as u64),
                },
                |r| match r {
                    CaptureReply::Var(v) => Some(v),
                    _ => None,
                },
                None,
            ),
            ReplayMode::Permissive => {
                let img = self.image.as_ref().unwrap();
                img.frame_vars
                    .get(&(name.to_string(), frame as u64))
                    .cloned()
                    .or_else(|| match img.globals.get(name) {
                        Some(v) if v.kind == VarKind::Global => Some(v.clone()),
                        _ => None,
                    })
            }
        }
    }

    fn lookup_typedef(&mut self, name: &str) -> Option<TypeId> {
        match self.mode {
            ReplayMode::Strict => self.strict_plain(
                CaptureCall::LookupType {
                    ns: "typedef".into(),
                    name: name.to_string(),
                },
                |r| match r {
                    CaptureReply::TypeRef(t) => Some(t.map(TypeId::from_raw)),
                    _ => None,
                },
                None,
            ),
            // Permissive: the restored snapshot already holds every tag
            // the recorded session ever defined.
            ReplayMode::Permissive => self.types.typedef(name),
        }
    }

    fn lookup_struct(&mut self, tag: &str) -> Option<RecordId> {
        match self.mode {
            ReplayMode::Strict => self.strict_plain(
                CaptureCall::LookupType {
                    ns: "struct".into(),
                    name: tag.to_string(),
                },
                |r| match r {
                    CaptureReply::TypeRef(t) => Some(t.map(RecordId::from_raw)),
                    _ => None,
                },
                None,
            ),
            ReplayMode::Permissive => self.types.struct_tag(tag),
        }
    }

    fn lookup_union(&mut self, tag: &str) -> Option<RecordId> {
        match self.mode {
            ReplayMode::Strict => self.strict_plain(
                CaptureCall::LookupType {
                    ns: "union".into(),
                    name: tag.to_string(),
                },
                |r| match r {
                    CaptureReply::TypeRef(t) => Some(t.map(RecordId::from_raw)),
                    _ => None,
                },
                None,
            ),
            ReplayMode::Permissive => self.types.union_tag(tag),
        }
    }

    fn lookup_enum(&mut self, tag: &str) -> Option<EnumId> {
        match self.mode {
            ReplayMode::Strict => self.strict_plain(
                CaptureCall::LookupType {
                    ns: "enum".into(),
                    name: tag.to_string(),
                },
                |r| match r {
                    CaptureReply::TypeRef(t) => Some(t.map(EnumId::from_raw)),
                    _ => None,
                },
                None,
            ),
            ReplayMode::Permissive => self.types.enum_tag(tag),
        }
    }

    fn has_function(&mut self, name: &str) -> bool {
        match self.mode {
            ReplayMode::Strict => self.strict_plain(
                CaptureCall::HasFunction {
                    name: name.to_string(),
                },
                |r| match r {
                    CaptureReply::Flag(b) => Some(b),
                    _ => None,
                },
                false,
            ),
            ReplayMode::Permissive => self.image.as_ref().unwrap().functions.contains(name),
        }
    }

    fn frame_count(&mut self) -> usize {
        match self.mode {
            ReplayMode::Strict => self.strict_plain(
                CaptureCall::FrameCount,
                |r| match r {
                    CaptureReply::Count(n) => Some(n as usize),
                    _ => None,
                },
                0,
            ),
            ReplayMode::Permissive => self.image.as_ref().unwrap().frame_count as usize,
        }
    }

    fn frame_info(&mut self, n: usize) -> Option<FrameInfo> {
        match self.mode {
            ReplayMode::Strict => self.strict_plain(
                CaptureCall::FrameInfo { n: n as u64 },
                |r| match r {
                    CaptureReply::Frame(f) => Some(f),
                    _ => None,
                },
                None,
            ),
            ReplayMode::Permissive => self
                .image
                .as_ref()
                .unwrap()
                .frames
                .get(&(n as u64))
                .cloned(),
        }
    }

    fn is_mapped(&mut self, addr: u64, len: u64) -> bool {
        match self.mode {
            ReplayMode::Strict => self.strict_plain(
                CaptureCall::IsMapped { addr, len },
                |r| match r {
                    CaptureReply::Flag(b) => Some(b),
                    _ => None,
                },
                false,
            ),
            ReplayMode::Permissive => {
                let img = self.image.as_ref().unwrap();
                img.mapped_probes
                    .get(&(addr, len))
                    .copied()
                    .unwrap_or_else(|| img.covered(addr, len))
            }
        }
    }

    fn take_output(&mut self) -> String {
        match self.mode {
            ReplayMode::Strict => self.strict_plain(
                CaptureCall::TakeOutput,
                |r| match r {
                    CaptureReply::Output(s) => Some(s),
                    _ => None,
                },
                String::new(),
            ),
            // The recorded session already drained the output stream;
            // new evaluation over a frozen image produces none.
            ReplayMode::Permissive => String::new(),
        }
    }
}
