//! [`TraceTarget`] — wire-level observability over the narrow interface.
//!
//! Every call that crosses [`Target`] is a potential debugger
//! round-trip, and the decorator tower (`Retry(Cache(Fault(backend)))`)
//! means "one evaluator read" and "one wire fetch" are different
//! quantities at different levels. `TraceTarget` makes each level
//! observable: insert it *above* the cache to see what the evaluator
//! asks for, *below* the cache to see what actually reaches the
//! backend, or both at once with distinct labels.
//!
//! Recorded per call: the operation kind ([`TraceOp`]), a short detail
//! (address + length, or the symbol asked for), the outcome
//! ([`TraceOutcome`]: ok / fault / transient / not-found), and the
//! latency. The data lands in three sinks shared through a cloneable
//! [`TraceHandle`]:
//!
//! * per-op counters (calls, errors, cumulative nanoseconds);
//! * per-op log₂ latency histograms;
//! * a bounded ring buffer of the most recent [`TraceEvent`]s.
//!
//! **Disabled tracing is free.** The handle's flag is a single relaxed
//! atomic load on the fast path; no counter is bumped, no event is
//! allocated, no clock is read. The `duel` REPL leaves tracing off
//! until `.trace on` (or transiently during `.profile`), and the E11
//! bench asserts the disabled overhead is negligible.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::error::TargetResult;
use crate::iface::{CallValue, FrameInfo, ReadRange, Target, VarInfo};
use crate::span::{SpanContext, SpanKind};
use duel_ctype::{Abi, EnumId, RecordId, TypeId, TypeTable};

/// The kind of a traced [`Target`] operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceOp {
    /// `get_bytes` — a debuggee memory read.
    GetBytes,
    /// `put_bytes` — a debuggee memory write.
    PutBytes,
    /// `alloc_space` — scratch allocation in the debuggee.
    AllocSpace,
    /// `call_func` — a debuggee function call.
    CallFunc,
    /// `get_variable` / `get_variable_in_frame` — symbol resolution.
    GetVariable,
    /// `lookup_typedef` / `lookup_struct` / `lookup_union` /
    /// `lookup_enum` — type lookups.
    LookupType,
    /// `has_function` — function-existence probe.
    HasFunction,
    /// `frame_count` / `frame_info` — stack inspection.
    Frames,
    /// `is_mapped` — address-space probe.
    IsMapped,
    /// `get_bytes_multi` — a vectored memory read (one wire turn
    /// carrying many ranges).
    MultiRead,
}

/// Every op kind, in display order.
pub const TRACE_OPS: [TraceOp; 10] = [
    TraceOp::GetBytes,
    TraceOp::PutBytes,
    TraceOp::AllocSpace,
    TraceOp::CallFunc,
    TraceOp::GetVariable,
    TraceOp::LookupType,
    TraceOp::HasFunction,
    TraceOp::Frames,
    TraceOp::IsMapped,
    TraceOp::MultiRead,
];

impl TraceOp {
    /// Stable numeric code of the operation (its position in
    /// [`TRACE_OPS`]); also the `op_code` field of meta-image events.
    pub fn index(self) -> usize {
        match self {
            TraceOp::GetBytes => 0,
            TraceOp::PutBytes => 1,
            TraceOp::AllocSpace => 2,
            TraceOp::CallFunc => 3,
            TraceOp::GetVariable => 4,
            TraceOp::LookupType => 5,
            TraceOp::HasFunction => 6,
            TraceOp::Frames => 7,
            TraceOp::IsMapped => 8,
            TraceOp::MultiRead => 9,
        }
    }

    /// The wire-level name of the operation.
    pub fn name(self) -> &'static str {
        match self {
            TraceOp::GetBytes => "get_bytes",
            TraceOp::PutBytes => "put_bytes",
            TraceOp::AllocSpace => "alloc_space",
            TraceOp::CallFunc => "call_func",
            TraceOp::GetVariable => "get_variable",
            TraceOp::LookupType => "lookup_type",
            TraceOp::HasFunction => "has_function",
            TraceOp::Frames => "frames",
            TraceOp::IsMapped => "is_mapped",
            TraceOp::MultiRead => "multi_read",
        }
    }
}

const OP_COUNT: usize = TRACE_OPS.len();
/// log₂ latency buckets: bucket `i` holds calls with latency in
/// `[2^i, 2^(i+1))` ns (bucket 0 also holds sub-nanosecond readings).
pub const HIST_BUCKETS: usize = 40;
/// log₂ ranges-per-call buckets for vectored reads: bucket `i` holds
/// `get_bytes_multi` calls carrying `[2^i, 2^(i+1))` ranges.
pub const RANGE_BUCKETS: usize = 16;

/// How a traced operation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The operation succeeded.
    Ok,
    /// A fault: the debuggee's honest "no" (bad address, …).
    Fault,
    /// A transient backend failure (retryable).
    Transient,
    /// A lookup answered "not found" / `false`.
    NotFound,
}

impl TraceOutcome {
    fn of_result<R>(r: &TargetResult<R>) -> TraceOutcome {
        match r {
            Ok(_) => TraceOutcome::Ok,
            Err(e) if e.is_transient() => TraceOutcome::Transient,
            Err(_) => TraceOutcome::Fault,
        }
    }

    fn of_option<R>(r: &Option<R>) -> TraceOutcome {
        if r.is_some() {
            TraceOutcome::Ok
        } else {
            TraceOutcome::NotFound
        }
    }

    /// Short label for event dumps.
    pub fn name(self) -> &'static str {
        match self {
            TraceOutcome::Ok => "ok",
            TraceOutcome::Fault => "fault",
            TraceOutcome::Transient => "transient",
            TraceOutcome::NotFound => "not-found",
        }
    }

    /// Stable numeric code of the outcome (the `outcome_code` field of
    /// meta-image events; 0 = ok).
    pub fn index(self) -> usize {
        match self {
            TraceOutcome::Ok => 0,
            TraceOutcome::Fault => 1,
            TraceOutcome::Transient => 2,
            TraceOutcome::NotFound => 3,
        }
    }
}

/// One recorded call, as kept in the ring buffer.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Monotonic sequence number (global across the handle).
    pub seq: u64,
    /// The operation kind.
    pub op: TraceOp,
    /// Address/length or symbol detail, e.g. `0x1000+64` or `hash`.
    pub detail: String,
    /// How the call ended.
    pub outcome: TraceOutcome,
    /// Observed latency in nanoseconds.
    pub nanos: u64,
    /// Start time, nanoseconds since the tower's span-context epoch
    /// (0 when spans were off at record time).
    pub ts_ns: u64,
    /// Trace (evaluation) ID the call belongs to, 0 if unattributed.
    pub trace: u64,
    /// Causing span ID (the innermost open span when the call was
    /// recorded), 0 if unattributed.
    pub span: u64,
}

impl TraceEvent {
    /// Renders the event as `.trace dump` prints it. Attributed events
    /// carry a trailing `span=N` marker.
    pub fn render(&self) -> String {
        let mut line = format!(
            "#{:<6} {:<13} {:<24} {:<9} {}",
            self.seq,
            self.op.name(),
            self.detail,
            self.outcome.name(),
            fmt_ns(self.nanos)
        );
        if self.span != 0 {
            line.push_str(&format!("  span={}", self.span));
        }
        line
    }
}

/// Formats a nanosecond count with a human unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

struct TraceShared {
    enabled: AtomicBool,
    seq: AtomicU64,
    /// `calls[op]`, `errors[op]`, `nanos[op]` — flat per-op counters.
    calls: Vec<AtomicU64>,
    errors: Vec<AtomicU64>,
    nanos: Vec<AtomicU64>,
    /// `hist[op * HIST_BUCKETS + bucket]` — log₂ latency histograms.
    hist: Vec<AtomicU64>,
    /// Total ranges carried by `get_bytes_multi` calls.
    multi_ranges: AtomicU64,
    /// log₂ ranges-per-call histogram for vectored reads.
    multi_hist: Vec<AtomicU64>,
    ring: Mutex<Ring>,
}

/// Counter snapshot for one operation kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpStats {
    /// Which operation.
    pub op: TraceOp,
    /// Calls recorded while tracing was enabled.
    pub calls: u64,
    /// Calls that ended in a fault or transient failure.
    pub errors: u64,
    /// Cumulative latency, nanoseconds.
    pub total_ns: u64,
    /// log₂ latency histogram (see [`HIST_BUCKETS`]).
    pub hist: Vec<u64>,
}

impl OpStats {
    /// Mean latency in nanoseconds (0 when no calls were recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }

    /// Approximate latency quantile from the histogram: the upper bound
    /// of the bucket containing the `q`-quantile call (`q` in `[0,1]`).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total: u64 = self.hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, n) in self.hist.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

/// A full snapshot of a trace handle's counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStats {
    /// Per-op counters, in [`TRACE_OPS`] order.
    pub ops: Vec<OpStats>,
    /// Events currently held in the ring buffer.
    pub events_held: usize,
    /// Events pushed out of the ring by newer ones.
    pub events_dropped: u64,
    /// Total ranges carried by vectored reads (`multi_read` calls).
    pub multi_ranges: u64,
    /// log₂ ranges-per-call histogram for vectored reads (see
    /// [`RANGE_BUCKETS`]).
    pub multi_ranges_hist: Vec<u64>,
}

impl TraceStats {
    /// Total calls across all op kinds.
    pub fn total_calls(&self) -> u64 {
        self.ops.iter().map(|o| o.calls).sum()
    }

    /// Total errors (faults + transients) across all op kinds.
    pub fn total_errors(&self) -> u64 {
        self.ops.iter().map(|o| o.errors).sum()
    }

    /// Counters for one op kind.
    pub fn op(&self, op: TraceOp) -> &OpStats {
        &self.ops[op.index()]
    }
}

/// A cloneable view onto one [`TraceTarget`]'s instrumentation.
///
/// The handle outlives borrows of the target itself, which is what lets
/// the evaluator read counter deltas mid-evaluation while holding
/// `&mut dyn Target`.
#[derive(Clone)]
pub struct TraceHandle(Arc<TraceShared>);

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl TraceHandle {
    /// Creates a handle with a ring buffer of `capacity` events,
    /// tracing disabled.
    pub fn new(capacity: usize) -> TraceHandle {
        let zeros = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect();
        TraceHandle(Arc::new(TraceShared {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            calls: zeros(OP_COUNT),
            errors: zeros(OP_COUNT),
            nanos: zeros(OP_COUNT),
            hist: zeros(OP_COUNT * HIST_BUCKETS),
            multi_ranges: AtomicU64::new(0),
            multi_hist: zeros(RANGE_BUCKETS),
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }))
    }

    /// Whether calls are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Counters and events accumulated so
    /// far are kept either way.
    pub fn set_enabled(&self, on: bool) {
        self.0.enabled.store(on, Ordering::Relaxed);
    }

    /// Rebounds the event ring to `capacity`, evicting oldest events
    /// if it now holds more than that. Each buffered event costs
    /// roughly 100 bytes (five words plus its detail string), so the
    /// default 4096-event ring is ~400 KiB at worst.
    pub fn set_capacity(&self, capacity: usize) {
        let mut ring = self.0.ring.lock().unwrap();
        ring.capacity = capacity.max(1);
        while ring.events.len() > ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
    }

    /// The current event-ring bound.
    pub fn capacity(&self) -> usize {
        self.0.ring.lock().unwrap().capacity
    }

    /// Zeroes every counter and drops all buffered events.
    pub fn clear(&self) {
        for c in self
            .0
            .calls
            .iter()
            .chain(&self.0.errors)
            .chain(&self.0.nanos)
            .chain(&self.0.hist)
            .chain(&self.0.multi_hist)
        {
            c.store(0, Ordering::Relaxed);
        }
        self.0.multi_ranges.store(0, Ordering::Relaxed);
        self.0.seq.store(0, Ordering::Relaxed);
        let mut ring = self.0.ring.lock().unwrap();
        ring.events.clear();
        ring.dropped = 0;
    }

    /// Memory reads recorded so far — the counter the evaluator diffs
    /// across a generator span to attribute wire traffic to AST nodes.
    pub fn reads(&self) -> u64 {
        self.0.calls[TraceOp::GetBytes.index()].load(Ordering::Relaxed)
    }

    /// Calls recorded so far for one op kind.
    pub fn calls(&self, op: TraceOp) -> u64 {
        self.0.calls[op.index()].load(Ordering::Relaxed)
    }

    /// Snapshots every counter and histogram.
    pub fn snapshot(&self) -> TraceStats {
        let ops = TRACE_OPS
            .iter()
            .map(|&op| {
                let i = op.index();
                OpStats {
                    op,
                    calls: self.0.calls[i].load(Ordering::Relaxed),
                    errors: self.0.errors[i].load(Ordering::Relaxed),
                    total_ns: self.0.nanos[i].load(Ordering::Relaxed),
                    hist: (0..HIST_BUCKETS)
                        .map(|b| self.0.hist[i * HIST_BUCKETS + b].load(Ordering::Relaxed))
                        .collect(),
                }
            })
            .collect();
        let ring = self.0.ring.lock().unwrap();
        TraceStats {
            ops,
            events_held: ring.events.len(),
            events_dropped: ring.dropped,
            multi_ranges: self.0.multi_ranges.load(Ordering::Relaxed),
            multi_ranges_hist: (0..RANGE_BUCKETS)
                .map(|b| self.0.multi_hist[b].load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// The most recent `n` events, oldest first.
    pub fn recent_events(&self, n: usize) -> Vec<TraceEvent> {
        let ring = self.0.ring.lock().unwrap();
        let skip = ring.events.len().saturating_sub(n);
        ring.events.iter().skip(skip).cloned().collect()
    }

    /// Serializes counters, histograms, and buffered events as a JSON
    /// object (the `--trace-json` export; see `docs/LANGUAGE.md`).
    pub fn to_json(&self, label: &str) -> String {
        let stats = self.snapshot();
        let mut ops = Vec::new();
        for o in &stats.ops {
            if o.calls == 0 {
                continue;
            }
            // Trim trailing empty buckets so the export stays readable.
            let last = o.hist.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
            let hist: Vec<String> = o.hist[..last].iter().map(|n| n.to_string()).collect();
            ops.push(format!(
                "{{\"op\":\"{}\",\"calls\":{},\"errors\":{},\"total_ns\":{},\
                 \"mean_ns\":{},\"p99_ns\":{},\"hist_log2_ns\":[{}]}}",
                o.op.name(),
                o.calls,
                o.errors,
                o.total_ns,
                o.mean_ns(),
                o.quantile_ns(0.99),
                hist.join(",")
            ));
        }
        let events: Vec<String> = self
            .recent_events(usize::MAX)
            .iter()
            .map(|e| {
                format!(
                    "{{\"seq\":{},\"op\":\"{}\",\"detail\":\"{}\",\"outcome\":\"{}\",\"ns\":{},\
                     \"ts_ns\":{},\"trace\":{},\"span\":{}}}",
                    e.seq,
                    e.op.name(),
                    e.detail.replace('\\', "\\\\").replace('"', "\\\""),
                    e.outcome.name(),
                    e.nanos,
                    e.ts_ns,
                    e.trace,
                    e.span
                )
            })
            .collect();
        format!(
            "{{\"label\":\"{}\",\"enabled\":{},\"events_dropped\":{},\
             \"ops\":[{}],\"events\":[{}]}}",
            label,
            self.is_enabled(),
            stats.events_dropped,
            ops.join(","),
            events.join(",")
        )
    }

    /// Feeds one externally-observed event into the counters,
    /// histograms, and ring, exactly as a live traced call would.
    ///
    /// This is how offline tools (e.g. `duel-replay`) reuse the stats
    /// machinery over a capture file instead of a live target.
    pub fn record_event(&self, op: TraceOp, detail: String, outcome: TraceOutcome, nanos: u64) {
        self.record(op, detail, outcome, nanos, Attribution::NONE);
    }

    /// Records one vectored read of `nranges` ranges: the normal
    /// [`TraceOp::MultiRead`] counters plus the ranges-per-call
    /// histogram.
    pub fn record_multi(&self, nranges: usize, detail: String, outcome: TraceOutcome, nanos: u64) {
        self.record_multi_at(nranges, detail, outcome, nanos, Attribution::NONE);
    }

    fn record_multi_at(
        &self,
        nranges: usize,
        detail: String,
        outcome: TraceOutcome,
        nanos: u64,
        at: Attribution,
    ) {
        let bucket = (usize::BITS - 1 - nranges.max(1).leading_zeros()) as usize;
        self.0.multi_hist[bucket.min(RANGE_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.0
            .multi_ranges
            .fetch_add(nranges as u64, Ordering::Relaxed);
        self.record(TraceOp::MultiRead, detail, outcome, nanos, at);
    }

    /// Wire turns recorded so far: scalar reads plus vectored reads
    /// (each vectored call is one turn no matter how many ranges it
    /// carries). This is the quantity the prefetch planner optimizes.
    pub fn wire_turns(&self) -> u64 {
        self.calls(TraceOp::GetBytes) + self.calls(TraceOp::MultiRead)
    }

    fn record(
        &self,
        op: TraceOp,
        detail: String,
        outcome: TraceOutcome,
        nanos: u64,
        at: Attribution,
    ) {
        let i = op.index();
        self.0.calls[i].fetch_add(1, Ordering::Relaxed);
        if matches!(outcome, TraceOutcome::Fault | TraceOutcome::Transient) {
            self.0.errors[i].fetch_add(1, Ordering::Relaxed);
        }
        self.0.nanos[i].fetch_add(nanos, Ordering::Relaxed);
        let bucket = (64 - nanos.max(1).leading_zeros() as usize - 1).min(HIST_BUCKETS - 1);
        self.0.hist[i * HIST_BUCKETS + bucket].fetch_add(1, Ordering::Relaxed);
        let seq = self.0.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.0.ring.lock().unwrap();
        if ring.events.len() >= ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(TraceEvent {
            seq,
            op,
            detail,
            outcome,
            nanos,
            ts_ns: at.ts_ns,
            trace: at.trace,
            span: at.span,
        });
    }
}

/// Causal coordinates of one recorded event: where on the span
/// timeline it happened and which span caused it.
#[derive(Clone, Copy, Debug)]
struct Attribution {
    ts_ns: u64,
    trace: u64,
    span: u64,
}

impl Attribution {
    const NONE: Attribution = Attribution {
        ts_ns: 0,
        trace: 0,
        span: 0,
    };

    /// Reads the current attribution off a span context (all-zero when
    /// spans are disabled, so unattributed events stay recognizable).
    fn current(spans: &SpanContext) -> Attribution {
        if !spans.is_enabled() {
            return Attribution::NONE;
        }
        Attribution {
            ts_ns: spans.now_ns(),
            trace: spans.current_trace(),
            span: spans.current(),
        }
    }
}

/// A [`Target`] decorator that records every call crossing it.
///
/// See the module docs for what is recorded and the zero-cost-when-off
/// guarantee. The decorator answers [`Target::trace_handle`] with its
/// own handle, so the evaluator finds the *outermost* trace layer
/// through `&mut dyn Target` no matter how deep the tower is.
#[derive(Debug)]
pub struct TraceTarget<T: Target> {
    inner: T,
    handle: TraceHandle,
    spans: SpanContext,
    label: &'static str,
}

/// Default ring-buffer capacity (events kept for `.trace dump`).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

impl<T: Target> TraceTarget<T> {
    /// Wraps `inner` with a fresh, disabled handle and the default ring
    /// capacity.
    pub fn new(inner: T) -> TraceTarget<T> {
        TraceTarget::with_label(inner, "trace")
    }

    /// Wraps `inner` under a layer label (used when stacking several
    /// trace layers, e.g. `"session"` above the cache and `"wire"`
    /// below it).
    ///
    /// Construction installs a fresh [`SpanContext`] into the whole
    /// stack below (via [`Target::set_span_context`]); since towers
    /// are built inside-out, the outermost trace layer's context wins
    /// and every layer shares one timeline.
    pub fn with_label(mut inner: T, label: &'static str) -> TraceTarget<T> {
        let spans = SpanContext::new(crate::span::DEFAULT_SPAN_CAPACITY);
        inner.set_span_context(&spans);
        TraceTarget {
            inner,
            handle: TraceHandle::new(DEFAULT_RING_CAPACITY),
            spans,
            label,
        }
    }

    /// The layer label.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// A clone of this layer's handle.
    pub fn handle(&self) -> TraceHandle {
        self.handle.clone()
    }

    /// A clone of the shared span context.
    pub fn spans(&self) -> SpanContext {
        self.spans.clone()
    }

    /// The wrapped target.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped target.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Records one call: skips *everything* (clock, counters, event)
    /// when tracing is off — the disabled cost is this one relaxed
    /// load.
    fn traced<R>(
        &mut self,
        op: TraceOp,
        detail: impl FnOnce() -> String,
        outcome: impl FnOnce(&R) -> TraceOutcome,
        call: impl FnOnce(&mut T) -> R,
    ) -> R {
        if !self.handle.0.enabled.load(Ordering::Relaxed) {
            return call(&mut self.inner);
        }
        let at = Attribution::current(&self.spans);
        let start = Instant::now();
        let r = call(&mut self.inner);
        let nanos = start.elapsed().as_nanos() as u64;
        self.handle.record(op, detail(), outcome(&r), nanos, at);
        r
    }
}

fn addr_len(addr: u64, len: usize) -> String {
    format!("0x{addr:x}+{len}")
}

impl<T: Target> Target for TraceTarget<T> {
    fn abi(&self) -> &Abi {
        self.inner.abi()
    }

    fn types(&self) -> &TypeTable {
        self.inner.types()
    }

    fn types_mut(&mut self) -> &mut TypeTable {
        self.inner.types_mut()
    }

    fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        let len = buf.len();
        self.traced(
            TraceOp::GetBytes,
            || addr_len(addr, len),
            TraceOutcome::of_result,
            |t| t.get_bytes(addr, buf),
        )
    }

    fn get_bytes_multi(&mut self, ranges: &mut [ReadRange<'_>]) -> Vec<TargetResult<()>> {
        if !self.handle.0.enabled.load(Ordering::Relaxed) {
            return self.inner.get_bytes_multi(ranges);
        }
        let n = ranges.len();
        let total: usize = ranges.iter().map(|r| r.buf.len()).sum();
        // A vectored read is the one wire op with visible fan-out:
        // open a parent span for the batch and record one child per
        // range, so the export shows exactly what the turn carried.
        let multi_span = self.spans.push(SpanKind::Wire, "multi_read", || {
            format!("{n} ranges, {total}b")
        });
        let mut at = Attribution::current(&self.spans);
        let start = Instant::now();
        let results = self.inner.get_bytes_multi(ranges);
        let nanos = start.elapsed().as_nanos() as u64;
        if multi_span != 0 {
            for (r, res) in ranges.iter().zip(&results) {
                let outcome = TraceOutcome::of_result(res);
                let (addr, len) = (r.addr, r.buf.len());
                self.spans.instant(SpanKind::Range, "range", || {
                    format!("{} {}", addr_len(addr, len), outcome.name())
                });
            }
            self.spans.pop(multi_span);
            // The batch event is attributed to the batch span itself —
            // its parent chain still leads to the causing eval node.
            at.span = multi_span;
        }
        let any_transient = results
            .iter()
            .any(|r| r.as_ref().err().is_some_and(|e| e.is_transient()));
        let outcome = if any_transient {
            TraceOutcome::Transient
        } else if results.iter().any(|r| r.is_err()) {
            TraceOutcome::Fault
        } else {
            TraceOutcome::Ok
        };
        self.handle
            .record_multi_at(n, format!("{n} ranges, {total}b"), outcome, nanos, at);
        results
    }

    fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
        let len = bytes.len();
        self.traced(
            TraceOp::PutBytes,
            || addr_len(addr, len),
            TraceOutcome::of_result,
            |t| t.put_bytes(addr, bytes),
        )
    }

    fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64> {
        self.traced(
            TraceOp::AllocSpace,
            || format!("{size}b align {align}"),
            TraceOutcome::of_result,
            |t| t.alloc_space(size, align),
        )
    }

    fn call_func(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue> {
        self.traced(
            TraceOp::CallFunc,
            || format!("{name}({} args)", args.len()),
            TraceOutcome::of_result,
            |t| t.call_func(name, args),
        )
    }

    fn get_variable(&mut self, name: &str) -> Option<VarInfo> {
        self.traced(
            TraceOp::GetVariable,
            || name.to_string(),
            TraceOutcome::of_option,
            |t| t.get_variable(name),
        )
    }

    fn get_variable_in_frame(&mut self, name: &str, frame: usize) -> Option<VarInfo> {
        self.traced(
            TraceOp::GetVariable,
            || format!("{name}@frame{frame}"),
            TraceOutcome::of_option,
            |t| t.get_variable_in_frame(name, frame),
        )
    }

    fn lookup_typedef(&mut self, name: &str) -> Option<TypeId> {
        self.traced(
            TraceOp::LookupType,
            || format!("typedef {name}"),
            TraceOutcome::of_option,
            |t| t.lookup_typedef(name),
        )
    }

    fn lookup_struct(&mut self, tag: &str) -> Option<RecordId> {
        self.traced(
            TraceOp::LookupType,
            || format!("struct {tag}"),
            TraceOutcome::of_option,
            |t| t.lookup_struct(tag),
        )
    }

    fn lookup_union(&mut self, tag: &str) -> Option<RecordId> {
        self.traced(
            TraceOp::LookupType,
            || format!("union {tag}"),
            TraceOutcome::of_option,
            |t| t.lookup_union(tag),
        )
    }

    fn lookup_enum(&mut self, tag: &str) -> Option<EnumId> {
        self.traced(
            TraceOp::LookupType,
            || format!("enum {tag}"),
            TraceOutcome::of_option,
            |t| t.lookup_enum(tag),
        )
    }

    fn has_function(&mut self, name: &str) -> bool {
        self.traced(
            TraceOp::HasFunction,
            || name.to_string(),
            |&found: &bool| {
                if found {
                    TraceOutcome::Ok
                } else {
                    TraceOutcome::NotFound
                }
            },
            |t| t.has_function(name),
        )
    }

    fn frame_count(&mut self) -> usize {
        self.traced(
            TraceOp::Frames,
            || "count".to_string(),
            |_| TraceOutcome::Ok,
            |t| t.frame_count(),
        )
    }

    fn frame_info(&mut self, n: usize) -> Option<FrameInfo> {
        self.traced(
            TraceOp::Frames,
            || format!("frame {n}"),
            TraceOutcome::of_option,
            |t| t.frame_info(n),
        )
    }

    fn is_mapped(&mut self, addr: u64, len: u64) -> bool {
        self.traced(
            TraceOp::IsMapped,
            || addr_len(addr, len as usize),
            |&mapped: &bool| {
                if mapped {
                    TraceOutcome::Ok
                } else {
                    TraceOutcome::NotFound
                }
            },
            |t| t.is_mapped(addr, len),
        )
    }

    fn take_output(&mut self) -> String {
        // Host-side buffer drain, not a wire operation: never traced.
        self.inner.take_output()
    }

    fn trace_handle(&self) -> Option<TraceHandle> {
        Some(self.handle.clone())
    }

    fn set_span_context(&mut self, spans: &SpanContext) {
        // An outer trace layer wins: adopt its timeline and keep
        // pushing it down so the whole tower agrees.
        self.spans = spans.clone();
        self.inner.set_span_context(spans);
    }

    fn span_context(&self) -> Option<SpanContext> {
        Some(self.spans.clone())
    }

    fn staleness_handle(&self) -> Option<crate::supervise::StalenessHandle> {
        self.inner.staleness_handle()
    }

    fn prefetch_submit(&mut self, ranges: &[(u64, u64)]) -> bool {
        self.inner.prefetch_submit(ranges)
    }

    fn prefetch_poll(&mut self) -> Option<crate::iface::PrefetchCompletion> {
        let c = self.inner.prefetch_poll()?;
        // The window's wire read happened below the cache (at submit
        // when synchronous, on the actor when pipelined), so this layer
        // never saw it as a get_bytes_multi. Record the completed
        // window as one MultiRead here — in both modes — so
        // `wire_turns()` counts every turn exactly once regardless of
        // how the tower executed it.
        if c.ranges > 0 && self.handle.0.enabled.load(Ordering::Relaxed) {
            let outcome = if c.failed > 0 {
                TraceOutcome::Fault
            } else {
                TraceOutcome::Ok
            };
            self.handle.record_multi(
                c.ranges as usize,
                format!(
                    "window {} pages, {}b{}",
                    c.ranges,
                    c.bytes,
                    if c.was_async { ", pipelined" } else { "" }
                ),
                outcome,
                c.wait_ns,
            );
        }
        Some(c)
    }

    fn cache_page_size(&self) -> Option<u64> {
        self.inner.cache_page_size()
    }

    fn pipeline_handle(&self) -> Option<crate::pipeline::PipelineHandle> {
        self.inner.pipeline_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn disabled_tracing_records_nothing() {
        let mut t = TraceTarget::new(scenario::scan_array());
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr, &mut buf).unwrap();
        let s = t.handle().snapshot();
        assert_eq!(s.total_calls(), 0);
        assert_eq!(s.events_held, 0);
        assert!(t.handle().recent_events(10).is_empty());
    }

    #[test]
    fn enabled_tracing_counts_calls_outcomes_and_latency() {
        let mut t = TraceTarget::new(scenario::scan_array());
        t.handle().set_enabled(true);
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr, &mut buf).unwrap();
        t.get_bytes(x.addr + 4, &mut buf).unwrap();
        assert!(t.get_bytes(0x10, &mut buf).is_err()); // fault
        assert!(t.get_variable("nonesuch").is_none()); // not-found
        let s = t.handle().snapshot();
        assert_eq!(s.op(TraceOp::GetBytes).calls, 3);
        assert_eq!(s.op(TraceOp::GetBytes).errors, 1);
        assert_eq!(s.op(TraceOp::GetVariable).calls, 2);
        assert_eq!(s.op(TraceOp::GetVariable).errors, 0);
        assert_eq!(t.handle().reads(), 3);
        // Histogram holds exactly the recorded calls.
        let hist_total: u64 = s.op(TraceOp::GetBytes).hist.iter().sum();
        assert_eq!(hist_total, 3);
        let events = t.handle().recent_events(10);
        assert_eq!(events.len(), 5);
        assert_eq!(events[4].outcome, TraceOutcome::NotFound);
        assert!(events[2].detail.starts_with("0x"), "{:?}", events[2]);
    }

    #[test]
    fn ring_buffer_is_bounded_and_keeps_newest() {
        let mut t = TraceTarget::new(scenario::scan_array());
        // Shrink the ring via a fresh handle-backed target.
        t.handle.0.ring.lock().unwrap().capacity = 4;
        t.handle().set_enabled(true);
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        for i in 0..10u64 {
            t.get_bytes(x.addr + i * 4, &mut buf).unwrap();
        }
        let s = t.handle().snapshot();
        assert_eq!(s.events_held, 4);
        assert_eq!(s.events_dropped, 7); // 11 events total (1 lookup + 10 reads)
        let events = t.handle().recent_events(100);
        assert_eq!(events.len(), 4);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events.last().unwrap().seq, 10);
    }

    #[test]
    fn clear_resets_counters_and_events() {
        let mut t = TraceTarget::new(scenario::scan_array());
        t.handle().set_enabled(true);
        let mut buf = [0u8; 4];
        let x = t.get_variable("x").unwrap();
        t.get_bytes(x.addr, &mut buf).unwrap();
        t.handle().clear();
        let s = t.handle().snapshot();
        assert_eq!(s.total_calls(), 0);
        assert_eq!(s.events_held, 0);
        assert!(t.handle().is_enabled(), "clear must not disable tracing");
    }

    #[test]
    fn trace_handle_is_discoverable_through_dyn_target() {
        let mut t = TraceTarget::new(scenario::scan_array());
        let dt: &mut dyn Target = &mut t;
        assert!(dt.trace_handle().is_some());
        let mut plain = scenario::scan_array();
        let dp: &mut dyn Target = &mut plain;
        assert!(dp.trace_handle().is_none());
    }

    #[test]
    fn quantiles_come_from_the_histogram() {
        let s = OpStats {
            op: TraceOp::GetBytes,
            calls: 4,
            errors: 0,
            total_ns: 100,
            hist: {
                let mut h = vec![0u64; HIST_BUCKETS];
                h[3] = 3; // three calls in [8, 16) ns
                h[10] = 1; // one call in [1024, 2048) ns
                h
            },
        };
        assert_eq!(s.quantile_ns(0.5), 16);
        assert_eq!(s.quantile_ns(0.99), 2048);
        assert_eq!(s.mean_ns(), 25);
    }

    #[test]
    fn json_export_has_the_expected_shape() {
        let mut t = TraceTarget::new(scenario::scan_array());
        t.handle().set_enabled(true);
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr, &mut buf).unwrap();
        let json = t.handle().to_json("wire");
        assert!(json.contains("\"label\":\"wire\""), "{json}");
        assert!(json.contains("\"op\":\"get_bytes\""), "{json}");
        assert!(json.contains("\"hist_log2_ns\""), "{json}");
        assert!(json.contains("\"events\""), "{json}");
    }
}
