#![warn(missing_docs)]

//! The debugger-target layer of the DUEL reproduction.
//!
//! The paper's central architectural claim is that a very-high-level
//! debugging language can sit on *any* debugger through a narrow
//! two-way interface; porting between gdb versions changed four lines.
//! This crate is that seam, rebuilt as a fault-tolerant stack:
//!
//! * [`Target`] — the narrow trait: memory, symbols, types, frames,
//!   calls. Everything above (eval, mini-C VM, CLI) talks only to this.
//! * [`TargetError`] — a two-class fault taxonomy: *faults* (bad
//!   debuggee state, surfaced as per-subexpression symbolic errors)
//!   vs *transient failures* (sick backend, retryable).
//! * [`SimTarget`] — an in-process simulated debuggee; [`scenario`]
//!   builds the paper's worked examples on top of it.
//! * [`value_io`] — endian-aware encode/decode of scalars, pointers
//!   and bit-fields through any `Target`.
//! * [`FaultTarget`] — deterministic fault injection (transient bursts,
//!   poisoned pages, truncation, latency) for robustness tests.
//! * [`RetryTarget`] — bounded retry with exponential backoff and
//!   per-call deadlines; wraps flaky backends such as a remote MI
//!   connection.
//! * [`CachedTarget`] — a per-stop page cache plus lookup memoization
//!   that coalesces adjacent reads into aligned page fetches, so
//!   element-at-a-time traversals stop paying one backend round-trip
//!   per element.
//! * [`TraceTarget`] — wire-level observability: per-op counters,
//!   latency histograms, and a bounded event ring, insertable at any
//!   level of the tower and free when disabled.
//! * [`span`] — causal span tracing: one [`SpanContext`] per tower,
//!   installed top-down through [`Target::set_span_context`], so every
//!   retry, cache fill, breaker trip and wire event is attributed to
//!   the evaluator node that caused it; exports Perfetto JSON and
//!   folded flamegraph stacks.
//! * [`metrics`] — an always-on, lock-free registry of named counters
//!   and log₂ histograms (the `.top` live view).
//! * [`RecordTarget`] / [`ReplayTarget`] — the flight recorder: stream
//!   every interface call (full arguments and replies) to a versioned
//!   JSONL capture, then serve an entire session back from the file —
//!   strictly (byte-identical replay, symbolic divergence reports) or
//!   permissively (new expressions over the frozen recorded state).
//! * [`SupervisedTarget`] — backend supervision: health probes, a
//!   three-state circuit breaker, pluggable reconnection with session
//!   resync, and degraded stale-read mode while the backend is down.
//! * [`ChaosTarget`] — a scriptable failure-injection gate (kill /
//!   hang / garble campaigns with a deterministic seed) for chaos
//!   testing the supervision stack.
//! * [`AsyncTarget`] — the I/O actor: moves the innermost backend onto
//!   a dedicated worker thread and adds non-blocking submit/poll for
//!   in-flight vectored reads, enabling double-buffered streaming
//!   prefetch (evaluate window *k* while window *k+1* is on the wire).

pub mod cache;
pub mod capture;
pub mod chaos;
pub mod error;
pub mod fault;
pub mod iface;
pub mod json;
pub mod meta;
pub mod metrics;
pub mod pipeline;
pub mod record;
pub mod replay;
pub mod retry;
pub mod scenario;
pub mod sim;
pub mod span;
pub mod supervise;
pub mod trace;
pub mod value_io;

pub use cache::{CacheConfig, CacheStats, CachedTarget};
pub use capture::{
    Capture, CaptureCall, CaptureEvent, CaptureReply, SharedSink, CAPTURE_SCHEMA_VERSION,
};
pub use chaos::{ChaosAction, ChaosEvent, ChaosHandle, ChaosMode, ChaosTarget};
pub use error::{TargetError, TargetResult};
pub use fault::{FaultConfig, FaultTarget};
pub use iface::{
    CallValue, FrameInfo, OwnedRange, PipelineTicket, PrefetchCompletion, ReadRange, Target,
    VarInfo, VarKind,
};
pub use meta::{MetaCapture, MetaSnapshot, MetaTarget, META_BASE};
pub use metrics::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};
pub use pipeline::{AsyncTarget, PipelineHandle, PipelineStats};
pub use record::RecordTarget;
pub use replay::{Divergence, ReplayMode, ReplayTarget};
pub use retry::{RetryPolicy, RetryStats, RetryTarget};
pub use sim::{SimCore, SimMemory, SimTarget, ARENA_BASE};
pub use span::{
    attribution_coverage, chrome_trace_json, folded_stacks, FlameWeight, SpanContext, SpanKind,
    SpanRecord, SpanSnapshot, DEFAULT_SPAN_CAPACITY,
};
pub use supervise::{
    probe_read, CircuitState, ProbeReconnect, Reconnect, ResyncReport, StalenessHandle,
    SupervisedTarget, SupervisorConfig, SupervisorStats, DEFAULT_PROBE_ADDR,
};
pub use trace::{TraceEvent, TraceHandle, TraceOp, TraceOutcome, TraceStats, TraceTarget};
