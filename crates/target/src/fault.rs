//! Deterministic fault injection for testing the robustness stack.
//!
//! [`FaultTarget`] wraps any [`Target`] and injects configurable
//! misbehaviour on the I/O-shaped operations (`get_bytes`, `put_bytes`,
//! `alloc_space`, `call_func`): a burst of transient errors, a
//! permanent fail-every-N pattern, poisoned address ranges, truncated
//! reads and artificial latency. Everything is counter-based, so tests
//! are fully reproducible.

use crate::error::{TargetError, TargetResult};
use crate::iface::{CallValue, FrameInfo, ReadRange, Target, VarInfo};
use duel_ctype::{Abi, EnumId, RecordId, TypeId, TypeTable};
use std::time::Duration;

/// What a [`FaultTarget`] should inject.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Fail the first N I/O operations with [`FaultConfig::error`],
    /// then behave normally (models a backend that recovers).
    pub transient_failures: u32,
    /// Additionally fail every Nth I/O operation (0 = never) with
    /// [`FaultConfig::error`] (models a persistently flaky link).
    pub fail_every: u64,
    /// The transient error to inject.
    pub error: TargetError,
    /// Address ranges `(start, len)` that permanently fault with
    /// [`TargetError::IllegalMemory`] (models corrupted pages).
    pub poison: Vec<(u64, u64)>,
    /// Reads longer than this many bytes report
    /// [`TargetError::Truncated`] (models a half-dead remote stub).
    pub truncate_reads_above: Option<usize>,
    /// Artificial delay added to every I/O operation.
    pub latency: Duration,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            transient_failures: 0,
            fail_every: 0,
            error: TargetError::Backend("injected transient fault".to_string()),
            poison: Vec::new(),
            truncate_reads_above: None,
            latency: Duration::ZERO,
        }
    }
}

impl FaultConfig {
    /// A config that fails the first `n` I/O operations with a
    /// transient backend error, then recovers.
    pub fn transient(n: u32) -> FaultConfig {
        FaultConfig {
            transient_failures: n,
            ..FaultConfig::default()
        }
    }

    /// A config that permanently poisons `[start, start+len)`.
    pub fn poisoned(start: u64, len: u64) -> FaultConfig {
        FaultConfig {
            poison: vec![(start, len)],
            ..FaultConfig::default()
        }
    }
}

/// A [`Target`] decorator that injects faults per [`FaultConfig`].
#[derive(Debug)]
pub struct FaultTarget<T: Target> {
    inner: T,
    cfg: FaultConfig,
    remaining_transients: u32,
    ops: u64,
    injected: u64,
}

impl<T: Target> FaultTarget<T> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: T, cfg: FaultConfig) -> FaultTarget<T> {
        let remaining_transients = cfg.transient_failures;
        FaultTarget {
            inner,
            cfg,
            remaining_transients,
            ops: 0,
            injected: 0,
        }
    }

    /// The wrapped target.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped target.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// How many faults have been injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// How many I/O operations have been attempted.
    pub fn operations(&self) -> u64 {
        self.ops
    }

    /// Begins the operation: applies latency and decides whether to
    /// inject a transient error.
    fn gate(&mut self) -> TargetResult<()> {
        self.ops += 1;
        pay_latency(self.cfg.latency);
        if self.remaining_transients > 0 {
            self.remaining_transients -= 1;
            self.injected += 1;
            return Err(self.cfg.error.clone());
        }
        if self.cfg.fail_every > 0 && self.ops.is_multiple_of(self.cfg.fail_every) {
            self.injected += 1;
            return Err(self.cfg.error.clone());
        }
        Ok(())
    }

    fn poisoned_at(&self, addr: u64, len: u64) -> bool {
        let end = addr.saturating_add(len.max(1));
        self.cfg
            .poison
            .iter()
            .any(|(start, plen)| addr < start.saturating_add(*plen) && *start < end)
    }
}

/// Pays a wire turn's worth of latency. Deliberately a plain sleep,
/// overshoot and all: the injected latency models time the wire is
/// busy and the CPU is *not*, so it must yield the core — a
/// spin-accurate wait would steal cycles from the evaluator on small
/// machines and invert the very overlap the pipeline benches measure.
/// Benchmarks that need the true per-turn figure measure it rather
/// than trusting the nominal one.
fn pay_latency(d: std::time::Duration) {
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

impl<T: Target> Target for FaultTarget<T> {
    fn abi(&self) -> &Abi {
        self.inner.abi()
    }

    fn types(&self) -> &TypeTable {
        self.inner.types()
    }

    fn types_mut(&mut self) -> &mut TypeTable {
        self.inner.types_mut()
    }

    fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        self.gate()?;
        if self.poisoned_at(addr, buf.len() as u64) {
            return Err(TargetError::IllegalMemory {
                addr,
                len: buf.len() as u64,
            });
        }
        if let Some(cap) = self.cfg.truncate_reads_above {
            if buf.len() > cap {
                return Err(TargetError::Truncated {
                    addr,
                    wanted: buf.len() as u64,
                    got: cap as u64,
                });
            }
        }
        self.inner.get_bytes(addr, buf)
    }

    fn get_bytes_multi(&mut self, ranges: &mut [ReadRange<'_>]) -> Vec<TargetResult<()>> {
        // One wire turn: latency is paid once per batch, but every
        // range still counts as an operation and gets its own injected
        // transient / poison / truncation decision, so one flaky range
        // cannot fail the whole batch.
        pay_latency(self.cfg.latency);
        let mut results: Vec<Option<TargetResult<()>>> = Vec::with_capacity(ranges.len());
        for r in ranges.iter() {
            self.ops += 1;
            let injected = if self.remaining_transients > 0 {
                self.remaining_transients -= 1;
                self.injected += 1;
                Some(Err(self.cfg.error.clone()))
            } else if self.cfg.fail_every > 0 && self.ops.is_multiple_of(self.cfg.fail_every) {
                self.injected += 1;
                Some(Err(self.cfg.error.clone()))
            } else if self.poisoned_at(r.addr, r.buf.len() as u64) {
                Some(Err(TargetError::IllegalMemory {
                    addr: r.addr,
                    len: r.buf.len() as u64,
                }))
            } else {
                match self.cfg.truncate_reads_above {
                    Some(cap) if r.buf.len() > cap => Some(Err(TargetError::Truncated {
                        addr: r.addr,
                        wanted: r.buf.len() as u64,
                        got: cap as u64,
                    })),
                    _ => None,
                }
            };
            results.push(injected);
        }
        // Forward the surviving ranges in one inner vectored call.
        let mut fwd = Vec::new();
        let mut fwd_idx = Vec::new();
        for (i, r) in ranges.iter_mut().enumerate() {
            if results[i].is_none() {
                fwd_idx.push(i);
                fwd.push(ReadRange::new(r.addr, &mut *r.buf));
            }
        }
        for (i, res) in fwd_idx
            .into_iter()
            .zip(self.inner.get_bytes_multi(&mut fwd))
        {
            results[i] = Some(res);
        }
        results.into_iter().map(Option::unwrap).collect()
    }

    fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
        self.gate()?;
        if self.poisoned_at(addr, bytes.len() as u64) {
            return Err(TargetError::IllegalMemory {
                addr,
                len: bytes.len() as u64,
            });
        }
        self.inner.put_bytes(addr, bytes)
    }

    fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64> {
        self.gate()?;
        self.inner.alloc_space(size, align)
    }

    fn call_func(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue> {
        self.gate()?;
        self.inner.call_func(name, args)
    }

    fn get_variable(&mut self, name: &str) -> Option<VarInfo> {
        self.inner.get_variable(name)
    }

    fn get_variable_in_frame(&mut self, name: &str, frame: usize) -> Option<VarInfo> {
        self.inner.get_variable_in_frame(name, frame)
    }

    fn lookup_typedef(&mut self, name: &str) -> Option<TypeId> {
        self.inner.lookup_typedef(name)
    }

    fn lookup_struct(&mut self, tag: &str) -> Option<RecordId> {
        self.inner.lookup_struct(tag)
    }

    fn lookup_union(&mut self, tag: &str) -> Option<RecordId> {
        self.inner.lookup_union(tag)
    }

    fn lookup_enum(&mut self, tag: &str) -> Option<EnumId> {
        self.inner.lookup_enum(tag)
    }

    fn has_function(&mut self, name: &str) -> bool {
        self.inner.has_function(name)
    }

    fn frame_count(&mut self) -> usize {
        self.inner.frame_count()
    }

    fn frame_info(&mut self, n: usize) -> Option<FrameInfo> {
        self.inner.frame_info(n)
    }

    fn is_mapped(&mut self, addr: u64, len: u64) -> bool {
        if self.poisoned_at(addr, len) {
            return false;
        }
        self.inner.is_mapped(addr, len)
    }

    fn take_output(&mut self) -> String {
        self.inner.take_output()
    }

    fn trace_handle(&self) -> Option<crate::trace::TraceHandle> {
        self.inner.trace_handle()
    }

    fn set_span_context(&mut self, spans: &crate::span::SpanContext) {
        self.inner.set_span_context(spans);
    }

    fn span_context(&self) -> Option<crate::span::SpanContext> {
        self.inner.span_context()
    }

    fn staleness_handle(&self) -> Option<crate::supervise::StalenessHandle> {
        self.inner.staleness_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn transient_burst_then_recovers() {
        let mut t = FaultTarget::new(scenario::scan_array(), FaultConfig::transient(2));
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        assert!(t.get_bytes(x.addr, &mut buf).is_err());
        assert!(t.get_bytes(x.addr, &mut buf).is_err());
        assert!(t.get_bytes(x.addr, &mut buf).is_ok());
        assert_eq!(t.injected(), 2);
        assert_eq!(t.operations(), 3);
    }

    #[test]
    fn poison_is_permanent_and_unmapped() {
        let mut t = scenario::scan_array();
        let x = t.get_variable("x").unwrap();
        let mut t = FaultTarget::new(t, FaultConfig::poisoned(x.addr + 12, 4));
        let mut buf = [0u8; 4];
        assert!(t.get_bytes(x.addr, &mut buf).is_ok());
        for _ in 0..3 {
            assert_eq!(
                t.get_bytes(x.addr + 12, &mut buf),
                Err(TargetError::IllegalMemory {
                    addr: x.addr + 12,
                    len: 4
                })
            );
        }
        assert!(!t.is_mapped(x.addr + 12, 4));
        assert!(t.is_mapped(x.addr, 4));
    }

    #[test]
    fn truncation_reports_partial_length() {
        let mut t = FaultTarget::new(
            scenario::scan_array(),
            FaultConfig {
                truncate_reads_above: Some(2),
                ..FaultConfig::default()
            },
        );
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(
            t.get_bytes(x.addr, &mut buf),
            Err(TargetError::Truncated {
                addr: x.addr,
                wanted: 4,
                got: 2
            })
        );
        let mut small = [0u8; 2];
        assert!(t.get_bytes(x.addr, &mut small).is_ok());
    }

    #[test]
    fn one_flaky_range_does_not_fail_the_batch() {
        // A single transient left in the burst budget hits only the
        // first range of the vectored call; the rest still go through.
        let mut t = FaultTarget::new(scenario::scan_array(), FaultConfig::transient(1));
        let x = t.get_variable("x").unwrap();
        let mut a = [0u8; 4];
        let mut b = [0u8; 4];
        let mut c = [0u8; 4];
        let mut ranges = [
            ReadRange::new(x.addr, &mut a),
            ReadRange::new(x.addr + 72, &mut b),
            ReadRange::new(x.addr + 12, &mut c),
        ];
        let rs = t.get_bytes_multi(&mut ranges);
        assert!(rs[0].as_ref().is_err_and(|e| e.is_transient()), "{rs:?}");
        assert_eq!(rs[1], Ok(()));
        assert_eq!(rs[2], Ok(()));
        assert_eq!(i32::from_le_bytes(b), 9); // x[18]
        assert_eq!(i32::from_le_bytes(c), 7); // x[3]
        assert_eq!(t.injected(), 1);
        // Each range counts as one faultable operation.
        assert_eq!(t.operations(), 3);
    }
}
