//! The fault taxonomy of the target layer.
//!
//! Every operation on a [`crate::Target`] returns a [`TargetResult`].
//! Errors fall into two classes that the rest of the system treats very
//! differently:
//!
//! * **Faults** ([`TargetError::is_fault`]) — the debuggee state is bad
//!   (wild pointer, missing symbol), but the debugger connection is
//!   healthy. Evaluation converts these into per-subexpression symbolic
//!   errors and keeps streaming the remaining values.
//! * **Transient failures** ([`TargetError::is_transient`]) — the
//!   backend hiccupped (dropped connection, timeout, short read). These
//!   are worth retrying; [`crate::RetryTarget`] does exactly that with
//!   bounded exponential backoff.
//!
//! Two variants straddle the boundary deliberately:
//! [`TargetError::CircuitOpen`] and [`TargetError::BackendDown`] are
//! raised by [`crate::SupervisedTarget`] *after* the transient budget
//! below it is spent, so they classify as faults — the retry layer must
//! pass them through untouched and evaluation renders them as
//! per-subexpression `<error: ...>` values while the breaker owns
//! recovery.

use std::error::Error;
use std::fmt;

/// Result alias used by every [`crate::Target`] operation.
pub type TargetResult<T> = Result<T, TargetError>;

/// An error reported by a debugger target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargetError {
    /// The debuggee address range is not mapped (a *fault*: the
    /// debuggee's data is bad, the debugger itself is fine).
    IllegalMemory {
        /// First address of the attempted access.
        addr: u64,
        /// Length of the attempted access in bytes.
        len: u64,
    },
    /// No variable/symbol with this name is visible (a *fault*).
    UnknownSymbol(String),
    /// No function with this name exists in the debuggee (a *fault*).
    UnknownFunction(String),
    /// Calling a debuggee function failed (a *fault*).
    CallFailed {
        /// Name of the function that was called.
        func: String,
        /// Backend-reported reason.
        reason: String,
    },
    /// A value too wide for the call boundary (a *fault*): scalar
    /// call marshalling carries at most 8 bytes, and silently
    /// truncating a wider value would corrupt the argument.
    UnsupportedWidth {
        /// Width of the offending value in bytes.
        bytes: u64,
    },
    /// A replayed session issued a call the capture does not contain at
    /// this position (a *fault*: the capture is the frozen ground truth
    /// and retrying the same divergent call cannot help).
    ReplayDivergence {
        /// Zero-based position in the capture's event stream.
        at: u64,
        /// The call the capture recorded at this position (or
        /// "end of capture").
        expected: String,
        /// The call the session actually issued.
        got: String,
    },
    /// The supervision layer's circuit breaker is open: the backend has
    /// been failing persistently and new operations are rejected
    /// immediately instead of waiting out another doomed round-trip (a
    /// *fault* at the session level: retrying through an open breaker
    /// cannot help — the breaker itself owns recovery, and evaluation
    /// should render the sub-expression as a symbolic error and keep
    /// the stream going).
    CircuitOpen {
        /// Milliseconds until the breaker next allows a half-open
        /// reconnect probe (0 = a probe is already due).
        retry_in_ms: u64,
    },
    /// The backend process is gone and could not be re-established —
    /// reconnect/respawn itself failed (a *fault*: the supervisor has
    /// already retried at every level below; surfacing one more
    /// transient would just loop).
    BackendDown(String),
    /// The backend itself misbehaved — protocol error, dropped
    /// connection, garbled reply (a *transient failure*, retryable).
    Backend(String),
    /// A backend call exceeded its deadline (a *transient failure*).
    Timeout {
        /// The deadline that was exceeded, in milliseconds.
        ms: u64,
    },
    /// The backend returned fewer bytes than requested (a *transient
    /// failure*: the classic symptom of a half-dead remote stub).
    Truncated {
        /// First address of the read.
        addr: u64,
        /// Bytes requested.
        wanted: u64,
        /// Bytes actually delivered.
        got: u64,
    },
}

impl TargetError {
    /// True for *faults*: the debuggee state is bad but the backend is
    /// healthy. These become per-subexpression symbolic errors during
    /// evaluation; retrying them cannot help.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            TargetError::IllegalMemory { .. }
                | TargetError::UnknownSymbol(_)
                | TargetError::UnknownFunction(_)
                | TargetError::CallFailed { .. }
                | TargetError::UnsupportedWidth { .. }
                | TargetError::ReplayDivergence { .. }
                | TargetError::CircuitOpen { .. }
                | TargetError::BackendDown(_)
        )
    }

    /// True for *transient failures*: the backend hiccupped and the
    /// same operation may well succeed if retried.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            TargetError::Backend(_) | TargetError::Timeout { .. } | TargetError::Truncated { .. }
        )
    }
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetError::IllegalMemory { addr, len } => {
                write!(f, "illegal memory reference: {len} byte(s) at 0x{addr:x}")
            }
            TargetError::UnknownSymbol(name) => write!(f, "unknown symbol: {name}"),
            TargetError::UnknownFunction(name) => write!(f, "unknown function: {name}"),
            TargetError::CallFailed { func, reason } => {
                write!(f, "call to {func} failed: {reason}")
            }
            TargetError::UnsupportedWidth { bytes } => write!(
                f,
                "value of {bytes} byte(s) is too wide for the call boundary (max 8)"
            ),
            TargetError::ReplayDivergence { at, expected, got } => write!(
                f,
                "replay divergence at event {at}: capture has {expected}, session issued {got}"
            ),
            TargetError::CircuitOpen { retry_in_ms } => {
                if *retry_in_ms == 0 {
                    write!(f, "backend circuit open: reconnect probe due")
                } else {
                    write!(
                        f,
                        "backend circuit open: reconnect probe in {retry_in_ms} ms"
                    )
                }
            }
            TargetError::BackendDown(msg) => write!(f, "backend down: {msg}"),
            TargetError::Backend(msg) => write!(f, "backend error: {msg}"),
            TargetError::Timeout { ms } => write!(f, "target call timed out after {ms} ms"),
            TargetError::Truncated { addr, wanted, got } => write!(
                f,
                "truncated read at 0x{addr:x}: wanted {wanted} byte(s), got {got}"
            ),
        }
    }
}

impl Error for TargetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn illegal_memory_display_is_stable() {
        // This exact rendering round-trips through the MI wire format
        // (MockGdb relays it; MiTarget re-parses it) — do not change it.
        let e = TargetError::IllegalMemory { addr: 0x99, len: 4 };
        assert_eq!(e.to_string(), "illegal memory reference: 4 byte(s) at 0x99");
    }

    #[test]
    fn taxonomy_is_a_partition() {
        let all = [
            TargetError::IllegalMemory { addr: 1, len: 1 },
            TargetError::UnknownSymbol("x".into()),
            TargetError::UnknownFunction("f".into()),
            TargetError::CallFailed {
                func: "f".into(),
                reason: "r".into(),
            },
            TargetError::UnsupportedWidth { bytes: 16 },
            TargetError::ReplayDivergence {
                at: 0,
                expected: "e".into(),
                got: "g".into(),
            },
            TargetError::CircuitOpen { retry_in_ms: 50 },
            TargetError::BackendDown("spawn failed".into()),
            TargetError::Backend("b".into()),
            TargetError::Timeout { ms: 10 },
            TargetError::Truncated {
                addr: 1,
                wanted: 4,
                got: 2,
            },
        ];
        for e in &all {
            assert!(
                e.is_fault() != e.is_transient(),
                "{e:?} must be exactly one of fault/transient"
            );
        }
    }
}
