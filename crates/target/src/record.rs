//! The flight recorder: a [`Target`] decorator that streams every
//! interface call to a capture file.
//!
//! `RecordTarget` is designed to live permanently in a decorator tower
//! (the CLI keeps one under the cache layer at all times): while no
//! sink is attached every call forwards with zero bookkeeping, and
//! [`RecordTarget::start`] arms it mid-session. It sits *innermost* —
//! below the cache — so the capture holds the calls that actually
//! reached the backend; cache hits never hollow out a capture.
//!
//! Output is streamed through a fixed-size [`BufWriter`] and flushed
//! every [`FLUSH_EVERY`] events, so memory use is bounded no matter how
//! long the session runs and at most a handful of events are lost on a
//! crash. A sink write error stops the recording (and is reported via
//! [`RecordTarget::last_error`]) rather than failing the session: the
//! debugger must keep working even when the disk does not.

use std::io::{BufWriter, Write};
use std::time::Instant;

use crate::capture::{footer_to_json, header_to_json, CaptureCall, CaptureEvent, CaptureReply};
use crate::error::TargetResult;
use crate::iface::{CallValue, FrameInfo, OwnedRange, PipelineTicket, ReadRange, Target, VarInfo};
use crate::trace::{TraceHandle, TraceOp, TRACE_OPS};
use duel_ctype::{Abi, EnumId, RecordId, TypeId, TypeTable};

/// Events between forced flushes of the capture stream.
pub const FLUSH_EVERY: u64 = 256;

struct Recorder {
    sink: BufWriter<Box<dyn Write + Send>>,
    events: u64,
    op_counts: Vec<(TraceOp, u64)>,
}

impl Recorder {
    fn bump(&mut self, op: TraceOp) {
        if let Some(slot) = self.op_counts.iter_mut().find(|(o, _)| *o == op) {
            slot.1 += 1;
        }
    }
}

/// A deferred capture event: either complete and waiting behind an
/// in-flight read, or the placeholder for that read itself.
enum Deferred {
    /// An event whose bytes are known, queued behind an earlier hole.
    Ready(CaptureCall, CaptureReply, u64),
    /// A pipelined read submitted but not yet polled. Filled in (and
    /// the queue flushed) when its ticket completes.
    Hole(PipelineTicket),
}

/// A [`Target`] decorator that records every call to a capture sink.
pub struct RecordTarget<T: Target> {
    inner: T,
    recorder: Option<Recorder>,
    last_error: Option<String>,
    /// Submit instants of in-flight pipeline reads (FIFO — tickets
    /// complete in submission order).
    inflight: std::collections::VecDeque<(PipelineTicket, Instant)>,
    /// Events held back so pipelined reads land in the capture at
    /// their *submission* position, not their poll position. A strict
    /// replay drives the same session against a synchronous backend,
    /// where each window read happens at submit time; recording it
    /// there keeps the two op streams identical. While a hole is
    /// outstanding, every later event queues behind it; completing the
    /// hole flushes the ready prefix. Bounded by the pipeline depth
    /// (double buffering: one window).
    deferred: std::collections::VecDeque<Deferred>,
}

impl<T: Target> std::fmt::Debug for RecordTarget<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordTarget")
            .field("recording", &self.is_recording())
            .field("events", &self.events_recorded())
            .finish()
    }
}

impl<T: Target> RecordTarget<T> {
    /// Wraps `inner` with recording off (pure passthrough).
    pub fn new(inner: T) -> RecordTarget<T> {
        RecordTarget {
            inner,
            recorder: None,
            last_error: None,
            inflight: std::collections::VecDeque::new(),
            deferred: std::collections::VecDeque::new(),
        }
    }

    /// Starts recording to `sink`, writing the capture header from the
    /// inner target's current ABI and type table. Any recording already
    /// in progress is finalized first.
    pub fn start(
        &mut self,
        sink: Box<dyn Write + Send>,
        backend: &str,
        scenario: &str,
    ) -> std::io::Result<()> {
        self.stop()?;
        let mut sink = BufWriter::new(sink);
        let snap = self.inner.types().snapshot();
        writeln!(
            sink,
            "{}",
            header_to_json(backend, scenario, self.inner.abi(), &snap)
        )?;
        self.recorder = Some(Recorder {
            sink,
            events: 0,
            op_counts: TRACE_OPS.iter().map(|&op| (op, 0)).collect(),
        });
        self.last_error = None;
        Ok(())
    }

    /// Starts recording to a file at `path`.
    pub fn start_file(&mut self, path: &str, backend: &str, scenario: &str) -> std::io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.start(Box::new(f), backend, scenario)
    }

    /// Finalizes the capture: writes the footer (per-op metrics + the
    /// authoritative final type snapshot) and flushes. Returns the
    /// number of events recorded, or 0 if recording was off.
    pub fn stop(&mut self) -> std::io::Result<u64> {
        // Write out anything still queued. Abandoned holes (a read
        // submitted but never polled — sessions drain theirs, so this
        // is defensive) are dropped: the capture then contains neither
        // the submit nor the bytes, exactly as if the read never
        // happened.
        let pending = std::mem::take(&mut self.deferred);
        for ev in pending {
            if let Deferred::Ready(call, reply, ns) = ev {
                self.write_event(call, reply, ns);
            }
        }
        let Some(mut rec) = self.recorder.take() else {
            return Ok(0);
        };
        let snap = self.inner.types().snapshot();
        writeln!(
            rec.sink,
            "{}",
            footer_to_json(&rec.op_counts, rec.events, &snap)
        )?;
        rec.sink.flush()?;
        Ok(rec.events)
    }

    /// Whether a sink is currently attached.
    pub fn is_recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Events written to the current recording (0 when off).
    pub fn events_recorded(&self) -> u64 {
        self.recorder.as_ref().map_or(0, |r| r.events)
    }

    /// The sink error that stopped the last recording, if any.
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    /// The wrapped target.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped target.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    fn emit(&mut self, call: CaptureCall, reply: CaptureReply, ns: u64) {
        if self.recorder.is_none() {
            return;
        }
        // An outstanding hole means this event happened after an
        // in-flight read was submitted; it must land after that read
        // in the capture too.
        if self.deferred.is_empty() {
            self.write_event(call, reply, ns);
        } else {
            self.deferred.push_back(Deferred::Ready(call, reply, ns));
        }
    }

    /// Writes one event line to the sink (unconditionally past the
    /// deferral queue). A sink error stops the recording and drops
    /// anything still deferred.
    fn write_event(&mut self, call: CaptureCall, reply: CaptureReply, ns: u64) {
        let Some(rec) = self.recorder.as_mut() else {
            return;
        };
        rec.bump(call.trace_op());
        let ev = CaptureEvent {
            seq: rec.events,
            call,
            reply,
            ns,
        };
        let line_ok = writeln!(rec.sink, "{}", ev.to_json_line());
        rec.events += 1;
        let flush_ok = if rec.events % FLUSH_EVERY == 0 {
            rec.sink.flush()
        } else {
            Ok(())
        };
        if let Err(e) = line_ok.and(flush_ok) {
            self.last_error = Some(format!("capture sink error, recording stopped: {e}"));
            self.recorder = None;
            self.deferred.clear();
        }
    }

    /// Writes the ready prefix of the deferral queue: everything up to
    /// the next still-open hole.
    fn flush_deferred(&mut self) {
        while matches!(self.deferred.front(), Some(Deferred::Ready(..))) {
            let Some(Deferred::Ready(call, reply, ns)) = self.deferred.pop_front() else {
                unreachable!()
            };
            self.write_event(call, reply, ns);
        }
    }

    fn clock(&self) -> Option<Instant> {
        if self.recorder.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }
}

fn elapsed_ns(start: Option<Instant>) -> u64 {
    start.map_or(0, |t| t.elapsed().as_nanos() as u64)
}

fn reply_of<R: Clone>(r: &TargetResult<R>, ok: impl FnOnce(&R) -> CaptureReply) -> CaptureReply {
    match r {
        Ok(v) => ok(v),
        Err(e) => CaptureReply::Err(e.clone()),
    }
}

impl<T: Target> Target for RecordTarget<T> {
    fn abi(&self) -> &Abi {
        self.inner.abi()
    }

    fn types(&self) -> &TypeTable {
        self.inner.types()
    }

    fn types_mut(&mut self) -> &mut TypeTable {
        self.inner.types_mut()
    }

    fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        let t = self.clock();
        let r = self.inner.get_bytes(addr, buf);
        if self.recorder.is_some() {
            let reply = reply_of(&r, |_| CaptureReply::Bytes(buf.to_vec()));
            self.emit(
                CaptureCall::GetBytes {
                    addr,
                    len: buf.len() as u64,
                },
                reply,
                elapsed_ns(t),
            );
        }
        r
    }

    fn get_bytes_multi(&mut self, ranges: &mut [ReadRange<'_>]) -> Vec<TargetResult<()>> {
        let t = self.clock();
        let results = self.inner.get_bytes_multi(ranges);
        if self.recorder.is_some() {
            let call = CaptureCall::MultiRead {
                ranges: ranges
                    .iter()
                    .map(|r| (r.addr, r.buf.len() as u64))
                    .collect(),
            };
            let reply = CaptureReply::Multi(
                ranges
                    .iter()
                    .zip(&results)
                    .map(|(r, res)| match res {
                        Ok(()) => Ok(r.buf.to_vec()),
                        Err(e) => Err(e.clone()),
                    })
                    .collect(),
            );
            self.emit(call, reply, elapsed_ns(t));
        }
        results
    }

    fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
        let t = self.clock();
        let r = self.inner.put_bytes(addr, bytes);
        if self.recorder.is_some() {
            let reply = reply_of(&r, |_| CaptureReply::Unit);
            self.emit(
                CaptureCall::PutBytes {
                    addr,
                    data: bytes.to_vec(),
                },
                reply,
                elapsed_ns(t),
            );
        }
        r
    }

    fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64> {
        let t = self.clock();
        let r = self.inner.alloc_space(size, align);
        if self.recorder.is_some() {
            let reply = reply_of(&r, |&a| CaptureReply::Addr(a));
            self.emit(
                CaptureCall::AllocSpace { size, align },
                reply,
                elapsed_ns(t),
            );
        }
        r
    }

    fn call_func(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue> {
        let t = self.clock();
        let r = self.inner.call_func(name, args);
        if self.recorder.is_some() {
            let reply = reply_of(&r, |v| CaptureReply::Value(v.clone()));
            self.emit(
                CaptureCall::CallFunc {
                    name: name.to_string(),
                    args: args.to_vec(),
                },
                reply,
                elapsed_ns(t),
            );
        }
        r
    }

    fn get_variable(&mut self, name: &str) -> Option<VarInfo> {
        let t = self.clock();
        let r = self.inner.get_variable(name);
        if self.recorder.is_some() {
            self.emit(
                CaptureCall::GetVariable {
                    name: name.to_string(),
                    frame: None,
                },
                CaptureReply::Var(r.clone()),
                elapsed_ns(t),
            );
        }
        r
    }

    fn get_variable_in_frame(&mut self, name: &str, frame: usize) -> Option<VarInfo> {
        let t = self.clock();
        let r = self.inner.get_variable_in_frame(name, frame);
        if self.recorder.is_some() {
            self.emit(
                CaptureCall::GetVariable {
                    name: name.to_string(),
                    frame: Some(frame as u64),
                },
                CaptureReply::Var(r.clone()),
                elapsed_ns(t),
            );
        }
        r
    }

    fn lookup_typedef(&mut self, name: &str) -> Option<TypeId> {
        let t = self.clock();
        let r = self.inner.lookup_typedef(name);
        if self.recorder.is_some() {
            self.emit(
                CaptureCall::LookupType {
                    ns: "typedef".into(),
                    name: name.to_string(),
                },
                CaptureReply::TypeRef(r.map(TypeId::raw)),
                elapsed_ns(t),
            );
        }
        r
    }

    fn lookup_struct(&mut self, tag: &str) -> Option<RecordId> {
        let t = self.clock();
        let r = self.inner.lookup_struct(tag);
        if self.recorder.is_some() {
            self.emit(
                CaptureCall::LookupType {
                    ns: "struct".into(),
                    name: tag.to_string(),
                },
                CaptureReply::TypeRef(r.map(RecordId::raw)),
                elapsed_ns(t),
            );
        }
        r
    }

    fn lookup_union(&mut self, tag: &str) -> Option<RecordId> {
        let t = self.clock();
        let r = self.inner.lookup_union(tag);
        if self.recorder.is_some() {
            self.emit(
                CaptureCall::LookupType {
                    ns: "union".into(),
                    name: tag.to_string(),
                },
                CaptureReply::TypeRef(r.map(RecordId::raw)),
                elapsed_ns(t),
            );
        }
        r
    }

    fn lookup_enum(&mut self, tag: &str) -> Option<EnumId> {
        let t = self.clock();
        let r = self.inner.lookup_enum(tag);
        if self.recorder.is_some() {
            self.emit(
                CaptureCall::LookupType {
                    ns: "enum".into(),
                    name: tag.to_string(),
                },
                CaptureReply::TypeRef(r.map(EnumId::raw)),
                elapsed_ns(t),
            );
        }
        r
    }

    fn has_function(&mut self, name: &str) -> bool {
        let t = self.clock();
        let r = self.inner.has_function(name);
        if self.recorder.is_some() {
            self.emit(
                CaptureCall::HasFunction {
                    name: name.to_string(),
                },
                CaptureReply::Flag(r),
                elapsed_ns(t),
            );
        }
        r
    }

    fn frame_count(&mut self) -> usize {
        let t = self.clock();
        let r = self.inner.frame_count();
        if self.recorder.is_some() {
            self.emit(
                CaptureCall::FrameCount,
                CaptureReply::Count(r as u64),
                elapsed_ns(t),
            );
        }
        r
    }

    fn frame_info(&mut self, n: usize) -> Option<FrameInfo> {
        let t = self.clock();
        let r = self.inner.frame_info(n);
        if self.recorder.is_some() {
            self.emit(
                CaptureCall::FrameInfo { n: n as u64 },
                CaptureReply::Frame(r.clone()),
                elapsed_ns(t),
            );
        }
        r
    }

    fn is_mapped(&mut self, addr: u64, len: u64) -> bool {
        let t = self.clock();
        let r = self.inner.is_mapped(addr, len);
        if self.recorder.is_some() {
            self.emit(
                CaptureCall::IsMapped { addr, len },
                CaptureReply::Flag(r),
                elapsed_ns(t),
            );
        }
        r
    }

    fn take_output(&mut self) -> String {
        let t = self.clock();
        let r = self.inner.take_output();
        if self.recorder.is_some() {
            self.emit(
                CaptureCall::TakeOutput,
                CaptureReply::Output(r.clone()),
                elapsed_ns(t),
            );
        }
        r
    }

    fn trace_handle(&self) -> Option<TraceHandle> {
        self.inner.trace_handle()
    }

    fn set_span_context(&mut self, spans: &crate::span::SpanContext) {
        self.inner.set_span_context(spans);
    }

    fn span_context(&self) -> Option<crate::span::SpanContext> {
        self.inner.span_context()
    }

    fn staleness_handle(&self) -> Option<crate::supervise::StalenessHandle> {
        self.inner.staleness_handle()
    }

    fn read_submit(&mut self, ranges: Vec<OwnedRange>) -> Option<PipelineTicket> {
        let ticket = self.inner.read_submit(ranges)?;
        if self.recorder.is_some() {
            // Reserve the event's place *now*: a strict replay runs
            // against a synchronous backend that performs this read at
            // submit time, so the capture must order it here. The
            // bytes arrive at poll time and fill the hole.
            self.inflight.push_back((ticket, Instant::now()));
            self.deferred.push_back(Deferred::Hole(ticket));
        }
        Some(ticket)
    }

    fn read_poll(&mut self, ticket: PipelineTicket) -> Option<Vec<(OwnedRange, TargetResult<()>)>> {
        let done = self.inner.read_poll(ticket)?;
        let start = match self.inflight.front() {
            Some(&(t, at)) if t == ticket => {
                self.inflight.pop_front();
                Some(at)
            }
            _ => None,
        };
        if self.recorder.is_some() {
            let call = CaptureCall::MultiRead {
                ranges: done
                    .iter()
                    .map(|(o, _)| (o.addr, o.buf.len() as u64))
                    .collect(),
            };
            let reply = CaptureReply::Multi(
                done.iter()
                    .map(|(o, r)| match r {
                        Ok(()) => Ok(o.buf.clone()),
                        Err(e) => Err(e.clone()),
                    })
                    .collect(),
            );
            let ns = elapsed_ns(start);
            let hole = self
                .deferred
                .iter_mut()
                .find(|d| matches!(d, Deferred::Hole(t) if *t == ticket));
            match hole {
                Some(slot) => *slot = Deferred::Ready(call, reply, ns),
                // Submitted before recording was armed: no reserved
                // slot, so it lands here in poll order.
                None => self.emit(call, reply, ns),
            }
            self.flush_deferred();
        }
        Some(done)
    }

    fn prefetch_submit(&mut self, ranges: &[(u64, u64)]) -> bool {
        self.inner.prefetch_submit(ranges)
    }

    fn prefetch_poll(&mut self) -> Option<crate::iface::PrefetchCompletion> {
        self.inner.prefetch_poll()
    }

    fn cache_page_size(&self) -> Option<u64> {
        self.inner.cache_page_size()
    }

    fn pipeline_handle(&self) -> Option<crate::pipeline::PipelineHandle> {
        self.inner.pipeline_handle()
    }
}

impl<T: Target> Drop for RecordTarget<T> {
    fn drop(&mut self) {
        // Finalize an in-flight recording so the file has its footer
        // even when the session exits without `.record stop`.
        let _ = self.stop();
    }
}
