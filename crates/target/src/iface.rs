//! The narrow two-way debugger interface.
//!
//! Following the paper, *everything* DUEL knows about the debuggee
//! flows through [`Target`]: raw memory, symbol/type lookups, frames,
//! and function calls. Porting DUEL to a new debugger means
//! implementing this one trait (the paper's gdb 4.2→4.6 port changed
//! four lines).

use crate::error::{TargetError, TargetResult};
use duel_ctype::{Abi, Endian, EnumId, RecordId, TypeId, TypeTable};

/// Where a variable lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarKind {
    /// File- or program-scope variable.
    Global,
    /// Local of a stack frame; `frame` 0 is the innermost frame.
    Local {
        /// Frame index, 0 = innermost.
        frame: usize,
    },
}

/// A resolved variable: its address and type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarInfo {
    /// Source-level name.
    pub name: String,
    /// Address of the variable's storage in the debuggee.
    pub addr: u64,
    /// Its C type.
    pub ty: TypeId,
    /// Global or frame-local.
    pub kind: VarKind,
}

/// A stack frame, innermost-first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameInfo {
    /// Name of the function executing in this frame.
    pub function: String,
    /// Current source line, if known.
    pub line: Option<u32>,
}

/// A raw value crossing the call boundary: the bytes of one argument
/// or return value, tagged with its C type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallValue {
    /// C type of the value.
    pub ty: TypeId,
    /// Its object representation, target byte order, `size` bytes.
    pub bytes: Vec<u8>,
}

impl CallValue {
    /// Builds a `size`-byte value from the low bytes of `raw`, in the
    /// target's byte order.
    ///
    /// Sizes wider than 8 bytes cannot be represented by a `u64` and
    /// fail with [`TargetError::UnsupportedWidth`] rather than being
    /// silently truncated (symmetric with [`CallValue::to_u64`], which
    /// only ever consumes the low 8 bytes of a wider value).
    pub fn from_u64(ty: TypeId, raw: u64, size: usize, abi: &Abi) -> TargetResult<CallValue> {
        if size > 8 {
            return Err(TargetError::UnsupportedWidth { bytes: size as u64 });
        }
        let size = size.max(1);
        let bytes = match abi.endian {
            Endian::Little => raw.to_le_bytes()[..size].to_vec(),
            Endian::Big => raw.to_be_bytes()[8 - size..].to_vec(),
        };
        Ok(CallValue { ty, bytes })
    }

    /// Reassembles the bytes into a zero-extended `u64` (the low 8
    /// bytes if the value is wider).
    pub fn to_u64(&self, abi: &Abi) -> u64 {
        let mut raw = 0u64;
        match abi.endian {
            Endian::Little => {
                // Low-order bytes come first.
                for (i, b) in self.bytes.iter().take(8).enumerate() {
                    raw |= (*b as u64) << (8 * i);
                }
            }
            Endian::Big => {
                // Low-order bytes come last: for a value wider than 8
                // bytes the *trailing* 8 are the low 8, so skip the
                // high-order head instead of truncating the tail.
                let skip = self.bytes.len().saturating_sub(8);
                for b in self.bytes.iter().skip(skip) {
                    raw = (raw << 8) | *b as u64;
                }
            }
        }
        raw
    }
}

/// One range of a vectored read: `buf.len()` bytes starting at `addr`.
///
/// A slice of these is what [`Target::get_bytes_multi`] fills in one
/// wire turn. The destination buffer doubles as the length request,
/// exactly like [`Target::get_bytes`].
#[derive(Debug)]
pub struct ReadRange<'a> {
    /// Start address of the range.
    pub addr: u64,
    /// Destination buffer; its length is the number of bytes to read.
    pub buf: &'a mut [u8],
}

impl<'a> ReadRange<'a> {
    /// Builds a range reading `buf.len()` bytes at `addr`.
    pub fn new(addr: u64, buf: &'a mut [u8]) -> ReadRange<'a> {
        ReadRange { addr, buf }
    }

    /// Length of the range in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the range is zero-length.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// One range of an *owned-buffer* vectored read: the asynchronous
/// counterpart of [`ReadRange`].
///
/// An in-flight read cannot borrow the caller's buffers (the actual
/// I/O happens on the pipeline worker thread while the caller keeps
/// running), so submission hands over owned buffers and completion
/// hands them back filled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedRange {
    /// Start address of the range.
    pub addr: u64,
    /// Destination buffer; its length is the number of bytes to read.
    pub buf: Vec<u8>,
}

impl OwnedRange {
    /// Builds a range reading `len` bytes at `addr`.
    pub fn new(addr: u64, len: usize) -> OwnedRange {
        OwnedRange {
            addr,
            buf: vec![0u8; len],
        }
    }
}

/// Ticket identifying one in-flight submission made through
/// [`Target::read_submit`] / [`Target::prefetch_submit`]. Tickets
/// complete strictly in submission order (FIFO).
pub type PipelineTicket = u64;

/// What one completed prefetch window did, as returned by
/// [`Target::prefetch_poll`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefetchCompletion {
    /// Ranges the cache planned for this window (page-aligned reads
    /// actually put on the wire; 0 when everything was resident).
    pub ranges: u64,
    /// Ranges that read cleanly and were inserted into the cache.
    pub clean: u64,
    /// Ranges that failed (left cold for the demand path to re-drive).
    pub failed: u64,
    /// Bytes carried by the clean ranges.
    pub bytes: u64,
    /// Nanoseconds the *poller* spent blocked waiting for the wire.
    pub wait_ns: u64,
    /// Nanoseconds the read was in flight while the caller was doing
    /// other work — the overlap the pipeline actually bought.
    pub overlap_ns: u64,
    /// Whether the window was serviced asynchronously (an I/O actor
    /// below took it); `false` means the cache read it synchronously
    /// at submit time.
    pub was_async: bool,
}

/// The debugger-target interface.
///
/// Memory access and function calls return [`TargetResult`] so that
/// faults (bad address) and failures (dead backend) stay
/// distinguishable; lookups return `Option` because "not found" is an
/// ordinary answer, not an error.
pub trait Target {
    /// The ABI (sizes, alignment, byte order) of the debuggee.
    fn abi(&self) -> &Abi;

    /// The type table describing the debuggee's types.
    fn types(&self) -> &TypeTable;

    /// Mutable access to the type table (evaluation interns derived
    /// types — pointers, arrays — as it goes).
    fn types_mut(&mut self) -> &mut TypeTable;

    /// Reads `buf.len()` bytes of debuggee memory starting at `addr`.
    fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()>;

    /// Reads several ranges in one wire turn, returning one result per
    /// range (same order). A failed range must not fail the batch:
    /// every range gets its own [`TargetResult`], exactly as if it had
    /// been read alone.
    ///
    /// The default is a correct scalar loop; backends and decorators
    /// override it to batch (one arena pass, one pipelined MI turn,
    /// coalesced cache-miss fetches, …).
    fn get_bytes_multi(&mut self, ranges: &mut [ReadRange<'_>]) -> Vec<TargetResult<()>> {
        ranges
            .iter_mut()
            .map(|r| self.get_bytes(r.addr, r.buf))
            .collect()
    }

    /// Writes `bytes` into debuggee memory starting at `addr`.
    fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()>;

    /// Allocates scratch space in the debuggee (for interned strings
    /// and call marshalling).
    fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64>;

    /// Calls debuggee function `name` with the given argument values.
    fn call_func(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue>;

    /// Resolves a variable: innermost-frame locals shadow globals.
    fn get_variable(&mut self, name: &str) -> Option<VarInfo>;

    /// Resolves a variable in a specific frame (0 = innermost).
    fn get_variable_in_frame(&mut self, name: &str, frame: usize) -> Option<VarInfo>;

    /// Looks up a `typedef` name.
    fn lookup_typedef(&mut self, name: &str) -> Option<TypeId>;

    /// Looks up a `struct` tag.
    fn lookup_struct(&mut self, tag: &str) -> Option<RecordId>;

    /// Looks up a `union` tag.
    fn lookup_union(&mut self, tag: &str) -> Option<RecordId>;

    /// Looks up an `enum` tag.
    fn lookup_enum(&mut self, tag: &str) -> Option<EnumId>;

    /// Whether the debuggee has a callable function named `name`.
    fn has_function(&mut self, name: &str) -> bool;

    /// Number of stack frames in the debuggee.
    fn frame_count(&mut self) -> usize;

    /// Frame metadata (0 = innermost).
    fn frame_info(&mut self, n: usize) -> Option<FrameInfo>;

    /// Whether `[addr, addr+len)` is readable debuggee memory.
    fn is_mapped(&mut self, addr: u64, len: u64) -> bool;

    /// Drains any `printf`-style output the debuggee produced since the
    /// last call.
    fn take_output(&mut self) -> String;

    /// The nearest [`crate::trace::TraceHandle`] in this target's
    /// decorator stack, if a [`crate::TraceTarget`] is present.
    ///
    /// Plain backends answer `None` (the default); decorators forward
    /// to their inner target; `TraceTarget` answers with its own
    /// handle. The evaluator uses this to attribute wire traffic to
    /// AST nodes while holding only `&mut dyn Target`.
    fn trace_handle(&self) -> Option<crate::trace::TraceHandle> {
        None
    }

    /// Installs a shared [`crate::span::SpanContext`] into this target
    /// and everything below it.
    ///
    /// Decorator towers are built inside-out, so the *outermost*
    /// [`crate::TraceTarget`] calls this on its inner target at
    /// construction time, replacing any context a lower trace layer
    /// created for itself — the whole tower ends up sharing one
    /// timeline. Layers that emit spans (retry, cache, supervise,
    /// trace) store the clone; pure pass-through layers just forward;
    /// leaf backends ignore it (the default).
    fn set_span_context(&mut self, _spans: &crate::span::SpanContext) {}

    /// The shared [`crate::span::SpanContext`] of this tower, if a
    /// span-aware layer is present.
    ///
    /// The evaluator discovers the context through this (holding only
    /// `&mut dyn Target`) to open root/node spans that the layers
    /// below will parent their own spans under.
    fn span_context(&self) -> Option<crate::span::SpanContext> {
        None
    }

    /// A handle onto the staleness state of the decorator stack, if a
    /// [`crate::SupervisedTarget`] is present.
    ///
    /// Plain backends answer `None` (the default); decorators forward
    /// to their inner target; `SupervisedTarget` answers with its own
    /// handle. The evaluator diffs the handle's stale-read counter
    /// around each produced value to decide whether to tag it
    /// `<stale>`, while holding only `&mut dyn Target`.
    fn staleness_handle(&self) -> Option<crate::supervise::StalenessHandle> {
        None
    }

    // -- asynchronous wire pipeline -----------------------------------

    /// Submits an owned-buffer vectored read without waiting for it.
    ///
    /// `None` (the default) means this tower has no I/O actor below and
    /// the caller must read synchronously instead. `Some(ticket)` means
    /// the read is now on the wire; reclaim it with
    /// [`Target::read_poll`]. Tickets complete strictly in submission
    /// order, and any *synchronous* operation issued after a submit is
    /// ordered behind it on the wire (one FIFO per tower).
    ///
    /// Only [`crate::AsyncTarget`] answers; decorators *between the
    /// page cache and the actor* (the record layer) forward it.
    fn read_submit(&mut self, _ranges: Vec<OwnedRange>) -> Option<PipelineTicket> {
        None
    }

    /// Blocks until the in-flight read identified by `ticket` is done
    /// and returns the filled buffers with one result per range.
    ///
    /// `None` (the default) means the ticket is unknown here — callers
    /// only poll tickets minted by this tower's own
    /// [`Target::read_submit`], oldest first.
    fn read_poll(
        &mut self,
        _ticket: PipelineTicket,
    ) -> Option<Vec<(OwnedRange, TargetResult<()>)>> {
        None
    }

    /// Asks the page cache to warm `ranges` (address, length), without
    /// blocking if an I/O actor can take the read.
    ///
    /// `false` (the default) means there is no cache in this tower and
    /// the caller should fall back to [`Target::get_bytes_multi`]-based
    /// warming. `true` means the window was accepted: either submitted
    /// asynchronously or already read synchronously — in both cases a
    /// matching [`Target::prefetch_poll`] completes it. The planner
    /// issues at most one unpolled submit at a time (double buffering),
    /// which is also the backpressure bound: window `k+2` is never on
    /// the wire before window `k+1` has been applied.
    ///
    /// [`crate::CachedTarget`] implements this; the layers above it
    /// (retry, supervise, trace) forward.
    fn prefetch_submit(&mut self, _ranges: &[(u64, u64)]) -> bool {
        false
    }

    /// Completes the oldest outstanding [`Target::prefetch_submit`]:
    /// waits for its wire read if necessary, applies clean pages to the
    /// cache, and reports what happened. `None` (the default, and the
    /// steady state) means no submit is outstanding.
    fn prefetch_poll(&mut self) -> Option<PrefetchCompletion> {
        None
    }

    /// The page size of the [`crate::CachedTarget`] in this tower, if
    /// any — what converts `prefetch_window` (pages) into bytes.
    fn cache_page_size(&self) -> Option<u64> {
        None
    }

    /// The nearest [`crate::PipelineHandle`] in this tower, if a
    /// [`crate::AsyncTarget`] is present. The evaluator diffs its
    /// counters around an evaluation to fill the pipeline fields of
    /// `EvalStats`, holding only `&mut dyn Target`.
    fn pipeline_handle(&self) -> Option<crate::pipeline::PipelineHandle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duel_ctype::TypeTable;

    #[test]
    fn call_value_roundtrips_both_endians() {
        let mut tt = TypeTable::new();
        let int = tt.prim(duel_ctype::Prim::Int);
        let le = Abi::lp64();
        let be = Abi::ilp32_be();
        let v = CallValue::from_u64(int, 0x1122_3344, 4, &le).unwrap();
        assert_eq!(v.bytes, vec![0x44, 0x33, 0x22, 0x11]);
        assert_eq!(v.to_u64(&le), 0x1122_3344);
        let v = CallValue::from_u64(int, 0x1122_3344, 4, &be).unwrap();
        assert_eq!(v.bytes, vec![0x11, 0x22, 0x33, 0x44]);
        assert_eq!(v.to_u64(&be), 0x1122_3344);
    }

    #[test]
    fn wide_big_endian_values_keep_their_low_bytes() {
        // Regression: a 16-byte big-endian value's low 8 bytes are the
        // *trailing* 8; taking the leading 8 returned the high half.
        let mut tt = TypeTable::new();
        let int = tt.prim(duel_ctype::Prim::Int);
        let be = Abi::ilp32_be();
        let le = Abi::lp64();
        let mut wide_be = vec![0xAA; 8];
        wide_be.extend_from_slice(&0x1122_3344_5566_7788u64.to_be_bytes());
        let v = CallValue {
            ty: int,
            bytes: wide_be,
        };
        assert_eq!(v.to_u64(&be), 0x1122_3344_5566_7788);
        let mut wide_le = 0x1122_3344_5566_7788u64.to_le_bytes().to_vec();
        wide_le.extend_from_slice(&[0xAA; 8]);
        let v = CallValue {
            ty: int,
            bytes: wide_le,
        };
        assert_eq!(v.to_u64(&le), 0x1122_3344_5566_7788);
    }

    #[test]
    fn from_u64_rejects_wide_sizes_instead_of_truncating() {
        let mut tt = TypeTable::new();
        let int = tt.prim(duel_ctype::Prim::Int);
        let abi = Abi::lp64();
        assert_eq!(
            CallValue::from_u64(int, 1, 16, &abi),
            Err(TargetError::UnsupportedWidth { bytes: 16 })
        );
        // Size 0 still saturates up to one byte: a zero-width scalar
        // cannot cross the call boundary at all.
        assert_eq!(
            CallValue::from_u64(int, 0xFF, 0, &abi).unwrap().bytes.len(),
            1
        );
    }
}
