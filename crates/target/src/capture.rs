//! The capture file format: a flight recorder for debugging sessions.
//!
//! A capture is a JSONL file — one JSON object per line — holding
//! everything that crossed the [`crate::Target`] interface during a
//! session:
//!
//! * a **header** (`{"schema_version":1,"name":"duel_capture",
//!   "config":{...},"types":{...}}`) with the backend label, scenario,
//!   ABI, and a [`TableSnapshot`] of the type table at recording start;
//! * one **event** per interface call
//!   (`{"seq":0,"call":{...},"reply":{...},"ns":123}`) with the full
//!   arguments and full reply bytes/values — faults and transients are
//!   recorded too, as `{"err":{...}}` replies;
//! * a **footer** (`{"footer":true,"metrics":{...},"types":{...}}`)
//!   with per-op totals and a *final* type snapshot. Backends define
//!   types lazily mid-session, so the footer snapshot is authoritative
//!   for replay; the header snapshot is the crash-safe floor.
//!
//! The shared `schema_version`/`name`/`config`/`metrics` envelope is
//! the same convention the bench reports and `--trace-json` use, so one
//! set of tooling can validate all three.
//!
//! [`crate::RecordTarget`] writes this format; [`crate::ReplayTarget`]
//! consumes it.

use std::fmt::Write as _;
use std::io::{self, Read as _, Write};
use std::sync::{Arc, Mutex};

use crate::error::TargetError;
use crate::iface::{CallValue, FrameInfo, VarInfo, VarKind};
use crate::json::{quote, Json};
use crate::trace::{TraceOp, TraceOutcome};
use duel_ctype::{
    Abi, Endian, EnumDef, EnumId, Field, Prim, Record, RecordId, TableSnapshot, TypeId, TypeKind,
};

/// Version of the capture schema this build writes. Version 2 added the
/// `multi_read` vectored-read event; files written by older builds
/// (back to [`CAPTURE_MIN_SCHEMA_VERSION`]) still parse.
pub const CAPTURE_SCHEMA_VERSION: u64 = 2;

/// Oldest schema version this build still reads.
pub const CAPTURE_MIN_SCHEMA_VERSION: u64 = 1;

/// The `name` field of every capture header.
pub const CAPTURE_NAME: &str = "duel_capture";

/// Encodes bytes as lowercase hex.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Decodes lowercase/uppercase hex back into bytes.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex string".into());
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16).ok_or("bad hex digit")?;
        let lo = (pair[1] as char).to_digit(16).ok_or("bad hex digit")?;
        out.push((hi * 16 + lo) as u8);
    }
    Ok(out)
}

/// One call crossing the interface, with its full arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaptureCall {
    /// `get_bytes(addr, buf)` — only the length of `buf` matters.
    GetBytes {
        /// Start address.
        addr: u64,
        /// Bytes requested.
        len: u64,
    },
    /// `put_bytes(addr, bytes)`.
    PutBytes {
        /// Start address.
        addr: u64,
        /// The bytes written.
        data: Vec<u8>,
    },
    /// `alloc_space(size, align)`.
    AllocSpace {
        /// Requested size in bytes.
        size: u64,
        /// Requested alignment.
        align: u64,
    },
    /// `call_func(name, args)`.
    CallFunc {
        /// Function name.
        name: String,
        /// Marshalled arguments.
        args: Vec<CallValue>,
    },
    /// `get_variable(name)` or `get_variable_in_frame(name, frame)`.
    GetVariable {
        /// Symbol name.
        name: String,
        /// `Some(n)` for the in-frame variant.
        frame: Option<u64>,
    },
    /// One of the four type lookups; `ns` is `typedef`, `struct`,
    /// `union`, or `enum`.
    LookupType {
        /// Which namespace.
        ns: String,
        /// Tag or typedef name.
        name: String,
    },
    /// `has_function(name)`.
    HasFunction {
        /// Function name.
        name: String,
    },
    /// `frame_count()`.
    FrameCount,
    /// `frame_info(n)`.
    FrameInfo {
        /// Frame index, 0 = innermost.
        n: u64,
    },
    /// `is_mapped(addr, len)`.
    IsMapped {
        /// Start address.
        addr: u64,
        /// Length in bytes.
        len: u64,
    },
    /// `take_output()` — recorded because session transcripts embed
    /// debuggee output, so byte-identical replay needs it.
    TakeOutput,
    /// `get_bytes_multi(ranges)` — one vectored read; each entry is
    /// `(addr, len)`. Schema version 2+.
    MultiRead {
        /// The requested `(addr, len)` ranges, in call order.
        ranges: Vec<(u64, u64)>,
    },
}

impl CaptureCall {
    /// The wire-level op name used in the JSON encoding.
    pub fn op_name(&self) -> &'static str {
        match self {
            CaptureCall::GetBytes { .. } => "get_bytes",
            CaptureCall::PutBytes { .. } => "put_bytes",
            CaptureCall::AllocSpace { .. } => "alloc_space",
            CaptureCall::CallFunc { .. } => "call_func",
            CaptureCall::GetVariable { .. } => "get_variable",
            CaptureCall::LookupType { .. } => "lookup_type",
            CaptureCall::HasFunction { .. } => "has_function",
            CaptureCall::FrameCount => "frame_count",
            CaptureCall::FrameInfo { .. } => "frame_info",
            CaptureCall::IsMapped { .. } => "is_mapped",
            CaptureCall::TakeOutput => "take_output",
            CaptureCall::MultiRead { .. } => "multi_read",
        }
    }

    /// The [`TraceOp`] bucket this call belongs to, for stats reuse.
    pub fn trace_op(&self) -> TraceOp {
        match self {
            CaptureCall::GetBytes { .. } => TraceOp::GetBytes,
            CaptureCall::PutBytes { .. } => TraceOp::PutBytes,
            CaptureCall::AllocSpace { .. } => TraceOp::AllocSpace,
            CaptureCall::CallFunc { .. } => TraceOp::CallFunc,
            CaptureCall::GetVariable { .. } => TraceOp::GetVariable,
            CaptureCall::LookupType { .. } => TraceOp::LookupType,
            CaptureCall::HasFunction { .. } => TraceOp::HasFunction,
            CaptureCall::FrameCount | CaptureCall::FrameInfo { .. } => TraceOp::Frames,
            CaptureCall::IsMapped { .. } => TraceOp::IsMapped,
            // take_output has no wire op of its own; it rides with
            // frames for stats purposes (cheap, frequent).
            CaptureCall::TakeOutput => TraceOp::Frames,
            CaptureCall::MultiRead { .. } => TraceOp::MultiRead,
        }
    }

    /// A short human detail string (`.trace dump` style).
    pub fn detail(&self) -> String {
        match self {
            CaptureCall::GetBytes { addr, len } => format!("0x{addr:x}+{len}"),
            CaptureCall::PutBytes { addr, data } => format!("0x{addr:x}+{}", data.len()),
            CaptureCall::AllocSpace { size, align } => format!("{size}b align {align}"),
            CaptureCall::CallFunc { name, args } => format!("{name}({} args)", args.len()),
            CaptureCall::GetVariable { name, frame: None } => name.clone(),
            CaptureCall::GetVariable {
                name,
                frame: Some(n),
            } => format!("{name}@frame{n}"),
            CaptureCall::LookupType { ns, name } => format!("{ns} {name}"),
            CaptureCall::HasFunction { name } => name.clone(),
            CaptureCall::FrameCount => "count".into(),
            CaptureCall::FrameInfo { n } => format!("frame {n}"),
            CaptureCall::IsMapped { addr, len } => format!("0x{addr:x}+{len}"),
            CaptureCall::TakeOutput => "output".into(),
            CaptureCall::MultiRead { ranges } => {
                let total: u64 = ranges.iter().map(|&(_, len)| len).sum();
                format!("{} ranges, {total}b", ranges.len())
            }
        }
    }

    fn to_json(&self) -> String {
        let op = self.op_name();
        match self {
            CaptureCall::GetBytes { addr, len } | CaptureCall::IsMapped { addr, len } => {
                format!("{{\"op\":\"{op}\",\"addr\":{addr},\"len\":{len}}}")
            }
            CaptureCall::PutBytes { addr, data } => format!(
                "{{\"op\":\"{op}\",\"addr\":{addr},\"data\":\"{}\"}}",
                hex_encode(data)
            ),
            CaptureCall::AllocSpace { size, align } => {
                format!("{{\"op\":\"{op}\",\"size\":{size},\"align\":{align}}}")
            }
            CaptureCall::CallFunc { name, args } => {
                let args: Vec<String> = args.iter().map(call_value_to_json).collect();
                format!(
                    "{{\"op\":\"{op}\",\"name\":{},\"args\":[{}]}}",
                    quote(name),
                    args.join(",")
                )
            }
            CaptureCall::GetVariable { name, frame } => match frame {
                Some(n) => format!("{{\"op\":\"{op}\",\"name\":{},\"frame\":{n}}}", quote(name)),
                None => format!("{{\"op\":\"{op}\",\"name\":{}}}", quote(name)),
            },
            CaptureCall::LookupType { ns, name } => format!(
                "{{\"op\":\"{op}\",\"ns\":{},\"name\":{}}}",
                quote(ns),
                quote(name)
            ),
            CaptureCall::HasFunction { name } => {
                format!("{{\"op\":\"{op}\",\"name\":{}}}", quote(name))
            }
            CaptureCall::FrameCount | CaptureCall::TakeOutput => format!("{{\"op\":\"{op}\"}}"),
            CaptureCall::FrameInfo { n } => format!("{{\"op\":\"{op}\",\"n\":{n}}}"),
            CaptureCall::MultiRead { ranges } => {
                let rs: Vec<String> = ranges
                    .iter()
                    .map(|(addr, len)| format!("[{addr},{len}]"))
                    .collect();
                format!("{{\"op\":\"{op}\",\"ranges\":[{}]}}", rs.join(","))
            }
        }
    }

    fn from_json(j: &Json) -> Result<CaptureCall, String> {
        let op = j
            .get("op")
            .and_then(Json::as_str)
            .ok_or("call missing op")?;
        let u = |k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("call missing {k}"))
        };
        let s = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("call missing {k}"))
        };
        Ok(match op {
            "get_bytes" => CaptureCall::GetBytes {
                addr: u("addr")?,
                len: u("len")?,
            },
            "put_bytes" => CaptureCall::PutBytes {
                addr: u("addr")?,
                data: hex_decode(&s("data")?)?,
            },
            "alloc_space" => CaptureCall::AllocSpace {
                size: u("size")?,
                align: u("align")?,
            },
            "call_func" => {
                let args = j
                    .get("args")
                    .and_then(Json::items)
                    .ok_or("call_func missing args")?
                    .iter()
                    .map(call_value_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                CaptureCall::CallFunc {
                    name: s("name")?,
                    args,
                }
            }
            "get_variable" => CaptureCall::GetVariable {
                name: s("name")?,
                frame: j.get("frame").and_then(Json::as_u64),
            },
            "lookup_type" => CaptureCall::LookupType {
                ns: s("ns")?,
                name: s("name")?,
            },
            "has_function" => CaptureCall::HasFunction { name: s("name")? },
            "frame_count" => CaptureCall::FrameCount,
            "frame_info" => CaptureCall::FrameInfo { n: u("n")? },
            "is_mapped" => CaptureCall::IsMapped {
                addr: u("addr")?,
                len: u("len")?,
            },
            "take_output" => CaptureCall::TakeOutput,
            "multi_read" => CaptureCall::MultiRead {
                ranges: j
                    .get("ranges")
                    .and_then(Json::items)
                    .ok_or("multi_read missing ranges")?
                    .iter()
                    .map(|pair| {
                        let pair = pair.items().ok_or("multi_read range pair")?;
                        Ok((
                            pair.first().and_then(Json::as_u64).ok_or("range addr")?,
                            pair.get(1).and_then(Json::as_u64).ok_or("range len")?,
                        ))
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            },
            other => return Err(format!("unknown op {other:?}")),
        })
    }
}

/// The recorded answer to one call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaptureReply {
    /// `get_bytes` success: the bytes read.
    Bytes(Vec<u8>),
    /// `put_bytes` success.
    Unit,
    /// `alloc_space` success: the allocated address.
    Addr(u64),
    /// `call_func` success: the return value.
    Value(CallValue),
    /// Variable resolution result.
    Var(Option<VarInfo>),
    /// Type lookup result, as a raw id into the capture's snapshot.
    TypeRef(Option<u32>),
    /// `has_function` / `is_mapped` answer.
    Flag(bool),
    /// `frame_count` answer.
    Count(u64),
    /// `frame_info` answer.
    Frame(Option<FrameInfo>),
    /// `take_output` answer.
    Output(String),
    /// Any `TargetResult` op that failed.
    Err(TargetError),
    /// `get_bytes_multi` answer: one result per requested range, in
    /// call order. Schema version 2+.
    Multi(Vec<Result<Vec<u8>, TargetError>>),
}

impl CaptureReply {
    /// The [`TraceOutcome`] this reply maps to.
    pub fn outcome(&self) -> TraceOutcome {
        match self {
            CaptureReply::Err(e) if e.is_transient() => TraceOutcome::Transient,
            CaptureReply::Err(_) => TraceOutcome::Fault,
            CaptureReply::Multi(rs) => {
                if rs
                    .iter()
                    .any(|r| r.as_ref().err().is_some_and(|e| e.is_transient()))
                {
                    TraceOutcome::Transient
                } else if rs.iter().any(|r| r.is_err()) {
                    TraceOutcome::Fault
                } else {
                    TraceOutcome::Ok
                }
            }
            CaptureReply::Var(None) | CaptureReply::TypeRef(None) | CaptureReply::Frame(None) => {
                TraceOutcome::NotFound
            }
            CaptureReply::Flag(false) => TraceOutcome::NotFound,
            _ => TraceOutcome::Ok,
        }
    }

    fn to_json(&self) -> String {
        match self {
            CaptureReply::Bytes(b) => format!("{{\"bytes\":\"{}\"}}", hex_encode(b)),
            CaptureReply::Unit => "{\"unit\":true}".into(),
            CaptureReply::Addr(a) => format!("{{\"addr\":{a}}}"),
            CaptureReply::Value(v) => format!("{{\"value\":{}}}", call_value_to_json(v)),
            CaptureReply::Var(None) => "{\"var\":null}".into(),
            CaptureReply::Var(Some(v)) => {
                let kind = match v.kind {
                    VarKind::Global => "null".to_string(),
                    VarKind::Local { frame } => frame.to_string(),
                };
                format!(
                    "{{\"var\":{{\"name\":{},\"addr\":{},\"ty\":{},\"frame\":{}}}}}",
                    quote(&v.name),
                    v.addr,
                    v.ty.raw(),
                    kind
                )
            }
            CaptureReply::TypeRef(None) => "{\"type\":null}".into(),
            CaptureReply::TypeRef(Some(raw)) => format!("{{\"type\":{raw}}}"),
            CaptureReply::Flag(b) => format!("{{\"flag\":{b}}}"),
            CaptureReply::Count(n) => format!("{{\"count\":{n}}}"),
            CaptureReply::Frame(None) => "{\"frame\":null}".into(),
            CaptureReply::Frame(Some(f)) => format!(
                "{{\"frame\":{{\"function\":{},\"line\":{}}}}}",
                quote(&f.function),
                f.line.map_or("null".to_string(), |l| l.to_string())
            ),
            CaptureReply::Output(s) => format!("{{\"output\":{}}}", quote(s)),
            CaptureReply::Err(e) => format!("{{\"err\":{}}}", target_error_to_json(e)),
            CaptureReply::Multi(rs) => {
                let parts: Vec<String> = rs
                    .iter()
                    .map(|r| match r {
                        Ok(b) => format!("{{\"bytes\":\"{}\"}}", hex_encode(b)),
                        Err(e) => format!("{{\"err\":{}}}", target_error_to_json(e)),
                    })
                    .collect();
                format!("{{\"multi\":[{}]}}", parts.join(","))
            }
        }
    }

    fn from_json(j: &Json) -> Result<CaptureReply, String> {
        if let Some(v) = j.get("multi") {
            return Ok(CaptureReply::Multi(
                v.items()
                    .ok_or("multi not an array")?
                    .iter()
                    .map(|item| {
                        if let Some(b) = item.get("bytes") {
                            Ok(Ok(hex_decode(b.as_str().ok_or("multi bytes")?)?))
                        } else if let Some(e) = item.get("err") {
                            Ok(Err(target_error_from_json(e)?))
                        } else {
                            Err("unrecognized multi entry".to_string())
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            ));
        }
        if let Some(v) = j.get("bytes") {
            return Ok(CaptureReply::Bytes(hex_decode(
                v.as_str().ok_or("bytes not a string")?,
            )?));
        }
        if j.get("unit").is_some() {
            return Ok(CaptureReply::Unit);
        }
        if let Some(v) = j.get("addr") {
            return Ok(CaptureReply::Addr(v.as_u64().ok_or("addr not a number")?));
        }
        if let Some(v) = j.get("value") {
            return Ok(CaptureReply::Value(call_value_from_json(v)?));
        }
        if let Some(v) = j.get("var") {
            if *v == Json::Null {
                return Ok(CaptureReply::Var(None));
            }
            let name = v
                .get("name")
                .and_then(Json::as_str)
                .ok_or("var missing name")?
                .to_string();
            let addr = v.get("addr").and_then(Json::as_u64).ok_or("var addr")?;
            let ty = TypeId::from_raw(v.get("ty").and_then(Json::as_u64).ok_or("var ty")? as u32);
            let kind = match v.get("frame") {
                Some(Json::Null) | None => VarKind::Global,
                Some(f) => VarKind::Local {
                    frame: f.as_u64().ok_or("var frame")? as usize,
                },
            };
            return Ok(CaptureReply::Var(Some(VarInfo {
                name,
                addr,
                ty,
                kind,
            })));
        }
        if let Some(v) = j.get("type") {
            return Ok(CaptureReply::TypeRef(match v {
                Json::Null => None,
                v => Some(v.as_u64().ok_or("type ref not a number")? as u32),
            }));
        }
        if let Some(v) = j.get("flag") {
            return Ok(CaptureReply::Flag(v.as_bool().ok_or("flag not a bool")?));
        }
        if let Some(v) = j.get("count") {
            return Ok(CaptureReply::Count(v.as_u64().ok_or("count")?));
        }
        if let Some(v) = j.get("frame") {
            if *v == Json::Null {
                return Ok(CaptureReply::Frame(None));
            }
            return Ok(CaptureReply::Frame(Some(FrameInfo {
                function: v
                    .get("function")
                    .and_then(Json::as_str)
                    .ok_or("frame function")?
                    .to_string(),
                line: match v.get("line") {
                    Some(Json::Null) | None => None,
                    Some(l) => Some(l.as_u64().ok_or("frame line")? as u32),
                },
            })));
        }
        if let Some(v) = j.get("output") {
            return Ok(CaptureReply::Output(
                v.as_str().ok_or("output not a string")?.to_string(),
            ));
        }
        if let Some(v) = j.get("err") {
            return Ok(CaptureReply::Err(target_error_from_json(v)?));
        }
        Err("unrecognized reply shape".into())
    }
}

fn call_value_to_json(v: &CallValue) -> String {
    format!(
        "{{\"ty\":{},\"bytes\":\"{}\"}}",
        v.ty.raw(),
        hex_encode(&v.bytes)
    )
}

fn call_value_from_json(j: &Json) -> Result<CallValue, String> {
    Ok(CallValue {
        ty: TypeId::from_raw(j.get("ty").and_then(Json::as_u64).ok_or("value ty")? as u32),
        bytes: hex_decode(j.get("bytes").and_then(Json::as_str).ok_or("value bytes")?)?,
    })
}

fn target_error_to_json(e: &TargetError) -> String {
    match e {
        TargetError::IllegalMemory { addr, len } => {
            format!("{{\"kind\":\"illegal_memory\",\"addr\":{addr},\"len\":{len}}}")
        }
        TargetError::UnknownSymbol(name) => {
            format!("{{\"kind\":\"unknown_symbol\",\"name\":{}}}", quote(name))
        }
        TargetError::UnknownFunction(name) => {
            format!("{{\"kind\":\"unknown_function\",\"name\":{}}}", quote(name))
        }
        TargetError::CallFailed { func, reason } => format!(
            "{{\"kind\":\"call_failed\",\"func\":{},\"reason\":{}}}",
            quote(func),
            quote(reason)
        ),
        TargetError::UnsupportedWidth { bytes } => {
            format!("{{\"kind\":\"unsupported_width\",\"bytes\":{bytes}}}")
        }
        TargetError::ReplayDivergence { at, expected, got } => format!(
            "{{\"kind\":\"replay_divergence\",\"at\":{at},\"expected\":{},\"got\":{}}}",
            quote(expected),
            quote(got)
        ),
        TargetError::CircuitOpen { retry_in_ms } => {
            format!("{{\"kind\":\"circuit_open\",\"retry_in_ms\":{retry_in_ms}}}")
        }
        TargetError::BackendDown(msg) => {
            format!("{{\"kind\":\"backend_down\",\"msg\":{}}}", quote(msg))
        }
        TargetError::Backend(msg) => format!("{{\"kind\":\"backend\",\"msg\":{}}}", quote(msg)),
        TargetError::Timeout { ms } => format!("{{\"kind\":\"timeout\",\"ms\":{ms}}}"),
        TargetError::Truncated { addr, wanted, got } => {
            format!("{{\"kind\":\"truncated\",\"addr\":{addr},\"wanted\":{wanted},\"got\":{got}}}")
        }
    }
}

fn target_error_from_json(j: &Json) -> Result<TargetError, String> {
    let kind = j.get("kind").and_then(Json::as_str).ok_or("err kind")?;
    let u = |k: &str| {
        j.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("err missing {k}"))
    };
    let s = |k: &str| {
        j.get(k)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("err missing {k}"))
    };
    Ok(match kind {
        "illegal_memory" => TargetError::IllegalMemory {
            addr: u("addr")?,
            len: u("len")?,
        },
        "unknown_symbol" => TargetError::UnknownSymbol(s("name")?),
        "unknown_function" => TargetError::UnknownFunction(s("name")?),
        "call_failed" => TargetError::CallFailed {
            func: s("func")?,
            reason: s("reason")?,
        },
        "unsupported_width" => TargetError::UnsupportedWidth { bytes: u("bytes")? },
        "replay_divergence" => TargetError::ReplayDivergence {
            at: u("at")?,
            expected: s("expected")?,
            got: s("got")?,
        },
        "circuit_open" => TargetError::CircuitOpen {
            retry_in_ms: u("retry_in_ms")?,
        },
        "backend_down" => TargetError::BackendDown(s("msg")?),
        "backend" => TargetError::Backend(s("msg")?),
        "timeout" => TargetError::Timeout { ms: u("ms")? },
        "truncated" => TargetError::Truncated {
            addr: u("addr")?,
            wanted: u("wanted")?,
            got: u("got")?,
        },
        other => return Err(format!("unknown error kind {other:?}")),
    })
}

/// One line of the capture: a call, its reply, and the latency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaptureEvent {
    /// Zero-based position in the event stream.
    pub seq: u64,
    /// The call.
    pub call: CaptureCall,
    /// The recorded answer.
    pub reply: CaptureReply,
    /// Observed live latency in nanoseconds.
    pub ns: u64,
}

impl CaptureEvent {
    /// Serializes the event as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"seq\":{},\"call\":{},\"reply\":{},\"ns\":{}}}",
            self.seq,
            self.call.to_json(),
            self.reply.to_json(),
            self.ns
        )
    }

    /// Parses one event line.
    pub fn from_json(j: &Json) -> Result<CaptureEvent, String> {
        Ok(CaptureEvent {
            seq: j.get("seq").and_then(Json::as_u64).ok_or("event seq")?,
            call: CaptureCall::from_json(j.get("call").ok_or("event call")?)?,
            reply: CaptureReply::from_json(j.get("reply").ok_or("event reply")?)?,
            ns: j.get("ns").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

// ---------------------------------------------------------------------
// Type table snapshot <-> JSON
// ---------------------------------------------------------------------

fn prim_from_name(name: &str) -> Option<Prim> {
    const ALL: [Prim; 13] = [
        Prim::Char,
        Prim::SChar,
        Prim::UChar,
        Prim::Short,
        Prim::UShort,
        Prim::Int,
        Prim::UInt,
        Prim::Long,
        Prim::ULong,
        Prim::LongLong,
        Prim::ULongLong,
        Prim::Float,
        Prim::Double,
    ];
    ALL.into_iter().find(|p| p.c_name() == name)
}

fn kind_to_json(k: &TypeKind) -> String {
    match k {
        TypeKind::Void => "{\"k\":\"void\"}".into(),
        TypeKind::Prim(p) => format!("{{\"k\":\"prim\",\"p\":{}}}", quote(p.c_name())),
        TypeKind::Pointer(t) => format!("{{\"k\":\"ptr\",\"to\":{}}}", t.raw()),
        TypeKind::Array { elem, len } => format!(
            "{{\"k\":\"arr\",\"elem\":{},\"len\":{}}}",
            elem.raw(),
            len.map_or("null".to_string(), |l| l.to_string())
        ),
        TypeKind::Function {
            ret,
            params,
            varargs,
        } => {
            let ps: Vec<String> = params.iter().map(|p| p.raw().to_string()).collect();
            format!(
                "{{\"k\":\"fn\",\"ret\":{},\"params\":[{}],\"varargs\":{varargs}}}",
                ret.raw(),
                ps.join(",")
            )
        }
        TypeKind::Struct(r) => format!("{{\"k\":\"struct\",\"r\":{}}}", r.raw()),
        TypeKind::Union(r) => format!("{{\"k\":\"union\",\"r\":{}}}", r.raw()),
        TypeKind::Enum(e) => format!("{{\"k\":\"enum\",\"e\":{}}}", e.raw()),
    }
}

fn kind_from_json(j: &Json) -> Result<TypeKind, String> {
    let k = j.get("k").and_then(Json::as_str).ok_or("kind tag")?;
    let tid = |key: &str| -> Result<TypeId, String> {
        Ok(TypeId::from_raw(
            j.get(key).and_then(Json::as_u64).ok_or("kind id")? as u32,
        ))
    };
    Ok(match k {
        "void" => TypeKind::Void,
        "prim" => TypeKind::Prim(
            prim_from_name(j.get("p").and_then(Json::as_str).ok_or("prim name")?)
                .ok_or("unknown prim")?,
        ),
        "ptr" => TypeKind::Pointer(tid("to")?),
        "arr" => TypeKind::Array {
            elem: tid("elem")?,
            len: match j.get("len") {
                Some(Json::Null) | None => None,
                Some(l) => Some(l.as_u64().ok_or("array len")?),
            },
        },
        "fn" => TypeKind::Function {
            ret: tid("ret")?,
            params: j
                .get("params")
                .and_then(Json::items)
                .ok_or("fn params")?
                .iter()
                .map(|p| Ok(TypeId::from_raw(p.as_u64().ok_or("fn param")? as u32)))
                .collect::<Result<Vec<_>, String>>()?,
            varargs: j.get("varargs").and_then(Json::as_bool).unwrap_or(false),
        },
        "struct" => TypeKind::Struct(RecordId::from_raw(
            j.get("r").and_then(Json::as_u64).ok_or("struct rid")? as u32,
        )),
        "union" => TypeKind::Union(RecordId::from_raw(
            j.get("r").and_then(Json::as_u64).ok_or("union rid")? as u32,
        )),
        "enum" => TypeKind::Enum(EnumId::from_raw(
            j.get("e").and_then(Json::as_u64).ok_or("enum eid")? as u32,
        )),
        other => return Err(format!("unknown kind {other:?}")),
    })
}

fn record_to_json(r: &Record) -> String {
    let fields: Vec<String> = r
        .fields
        .iter()
        .map(|f| {
            format!(
                "{{\"name\":{},\"ty\":{},\"bits\":{}}}",
                quote(&f.name),
                f.ty.raw(),
                f.bits.map_or("null".to_string(), |b| b.to_string())
            )
        })
        .collect();
    format!(
        "{{\"name\":{},\"fields\":[{}],\"union\":{},\"complete\":{}}}",
        r.name.as_deref().map_or("null".to_string(), quote),
        fields.join(","),
        r.is_union,
        r.complete
    )
}

fn record_from_json(j: &Json) -> Result<Record, String> {
    Ok(Record {
        name: match j.get("name") {
            Some(Json::Null) | None => None,
            Some(n) => Some(n.as_str().ok_or("record name")?.to_string()),
        },
        fields: j
            .get("fields")
            .and_then(Json::items)
            .ok_or("record fields")?
            .iter()
            .map(|f| {
                Ok(Field {
                    name: f
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("field name")?
                        .to_string(),
                    ty: TypeId::from_raw(
                        f.get("ty").and_then(Json::as_u64).ok_or("field ty")? as u32
                    ),
                    bits: match f.get("bits") {
                        Some(Json::Null) | None => None,
                        Some(b) => Some(b.as_u64().ok_or("field bits")? as u8),
                    },
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        is_union: j.get("union").and_then(Json::as_bool).unwrap_or(false),
        complete: j.get("complete").and_then(Json::as_bool).unwrap_or(true),
    })
}

fn enum_to_json(e: &EnumDef) -> String {
    let vals: Vec<String> = e
        .enumerators
        .iter()
        .map(|(n, v)| format!("[{},{v}]", quote(n)))
        .collect();
    format!(
        "{{\"name\":{},\"vals\":[{}]}}",
        e.name.as_deref().map_or("null".to_string(), quote),
        vals.join(",")
    )
}

fn enum_from_json(j: &Json) -> Result<EnumDef, String> {
    Ok(EnumDef {
        name: match j.get("name") {
            Some(Json::Null) | None => None,
            Some(n) => Some(n.as_str().ok_or("enum name")?.to_string()),
        },
        enumerators: j
            .get("vals")
            .and_then(Json::items)
            .ok_or("enum vals")?
            .iter()
            .map(|pair| {
                let pair = pair.items().ok_or("enum pair")?;
                Ok((
                    pair.first()
                        .and_then(Json::as_str)
                        .ok_or("enum pair name")?
                        .to_string(),
                    pair.get(1).and_then(Json::as_i64).ok_or("enum pair val")?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?,
    })
}

/// Serializes a type snapshot as a JSON object.
pub fn snapshot_to_json(snap: &TableSnapshot) -> String {
    let kinds: Vec<String> = snap.kinds.iter().map(kind_to_json).collect();
    let records: Vec<String> = snap.records.iter().map(record_to_json).collect();
    let enums: Vec<String> = snap.enums.iter().map(enum_to_json).collect();
    let named = |pairs: &[(String, u32)]| -> String {
        let items: Vec<String> = pairs
            .iter()
            .map(|(n, id)| format!("[{},{id}]", quote(n)))
            .collect();
        format!("[{}]", items.join(","))
    };
    let typedefs: Vec<(String, u32)> = snap
        .typedefs
        .iter()
        .map(|(n, id)| (n.clone(), id.raw()))
        .collect();
    let structs: Vec<(String, u32)> = snap
        .struct_tags
        .iter()
        .map(|(n, id)| (n.clone(), id.raw()))
        .collect();
    let unions: Vec<(String, u32)> = snap
        .union_tags
        .iter()
        .map(|(n, id)| (n.clone(), id.raw()))
        .collect();
    let enums_tags: Vec<(String, u32)> = snap
        .enum_tags
        .iter()
        .map(|(n, id)| (n.clone(), id.raw()))
        .collect();
    format!(
        "{{\"kinds\":[{}],\"records\":[{}],\"enums\":[{}],\"typedefs\":{},\
         \"struct_tags\":{},\"union_tags\":{},\"enum_tags\":{}}}",
        kinds.join(","),
        records.join(","),
        enums.join(","),
        named(&typedefs),
        named(&structs),
        named(&unions),
        named(&enums_tags)
    )
}

/// Parses a type snapshot back from its JSON object.
pub fn snapshot_from_json(j: &Json) -> Result<TableSnapshot, String> {
    fn pairs<I: Copy>(
        j: &Json,
        key: &str,
        mk: impl Fn(u32) -> I,
    ) -> Result<Vec<(String, I)>, String> {
        j.get(key)
            .and_then(Json::items)
            .ok_or_else(|| format!("snapshot missing {key}"))?
            .iter()
            .map(|pair| {
                let pair = pair.items().ok_or("snapshot pair")?;
                Ok((
                    pair.first()
                        .and_then(Json::as_str)
                        .ok_or("pair name")?
                        .to_string(),
                    mk(pair.get(1).and_then(Json::as_u64).ok_or("pair id")? as u32),
                ))
            })
            .collect()
    }
    Ok(TableSnapshot {
        kinds: j
            .get("kinds")
            .and_then(Json::items)
            .ok_or("snapshot kinds")?
            .iter()
            .map(kind_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        records: j
            .get("records")
            .and_then(Json::items)
            .ok_or("snapshot records")?
            .iter()
            .map(record_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        enums: j
            .get("enums")
            .and_then(Json::items)
            .ok_or("snapshot enums")?
            .iter()
            .map(enum_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        typedefs: pairs(j, "typedefs", TypeId::from_raw)?,
        struct_tags: pairs(j, "struct_tags", RecordId::from_raw)?,
        union_tags: pairs(j, "union_tags", RecordId::from_raw)?,
        enum_tags: pairs(j, "enum_tags", EnumId::from_raw)?,
    })
}

// ---------------------------------------------------------------------
// Header / footer / whole-capture parsing
// ---------------------------------------------------------------------

/// The parsed header line of a capture.
#[derive(Clone, Debug, PartialEq)]
pub struct CaptureHeader {
    /// Schema version the file was written with.
    pub schema_version: u64,
    /// Backend label, e.g. `"sim"` or `"gdb-mi"`.
    pub backend: String,
    /// Scenario or program label (free-form).
    pub scenario: String,
    /// ABI of the recorded target.
    pub abi: Abi,
    /// Type table at recording start.
    pub types: TableSnapshot,
}

/// Serializes the header line.
pub fn header_to_json(backend: &str, scenario: &str, abi: &Abi, types: &TableSnapshot) -> String {
    let endian = match abi.endian {
        Endian::Little => "little",
        Endian::Big => "big",
    };
    format!(
        "{{\"schema_version\":{CAPTURE_SCHEMA_VERSION},\"name\":\"{CAPTURE_NAME}\",\
         \"config\":{{\"backend\":{},\"scenario\":{},\
         \"abi\":{{\"pointer_bytes\":{},\"long_bytes\":{},\"endian\":\"{endian}\",\
         \"char_signed\":{},\"max_align\":{}}}}},\"types\":{}}}",
        quote(backend),
        quote(scenario),
        abi.pointer_bytes,
        abi.long_bytes,
        abi.char_signed,
        abi.max_align,
        snapshot_to_json(types)
    )
}

fn header_from_json(j: &Json) -> Result<CaptureHeader, String> {
    let schema_version = j
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("header missing schema_version")?;
    if !(CAPTURE_MIN_SCHEMA_VERSION..=CAPTURE_SCHEMA_VERSION).contains(&schema_version) {
        return Err(format!(
            "unsupported capture schema_version {schema_version} (this build reads \
             {CAPTURE_MIN_SCHEMA_VERSION}..={CAPTURE_SCHEMA_VERSION})"
        ));
    }
    if j.get("name").and_then(Json::as_str) != Some(CAPTURE_NAME) {
        return Err("not a duel_capture file (bad name field)".into());
    }
    let config = j.get("config").ok_or("header missing config")?;
    let abi_j = config.get("abi").ok_or("config missing abi")?;
    let abi = Abi {
        pointer_bytes: abi_j
            .get("pointer_bytes")
            .and_then(Json::as_u64)
            .ok_or("abi pointer_bytes")?,
        long_bytes: abi_j
            .get("long_bytes")
            .and_then(Json::as_u64)
            .ok_or("abi long_bytes")?,
        endian: match abi_j.get("endian").and_then(Json::as_str) {
            Some("little") => Endian::Little,
            Some("big") => Endian::Big,
            _ => return Err("abi endian".into()),
        },
        char_signed: abi_j
            .get("char_signed")
            .and_then(Json::as_bool)
            .ok_or("abi char_signed")?,
        max_align: abi_j
            .get("max_align")
            .and_then(Json::as_u64)
            .ok_or("abi max_align")?,
    };
    Ok(CaptureHeader {
        schema_version,
        backend: config
            .get("backend")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        scenario: config
            .get("scenario")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string(),
        abi,
        types: snapshot_from_json(j.get("types").ok_or("header missing types")?)?,
    })
}

/// Serializes the footer line: per-op metrics plus the final type
/// snapshot (authoritative for replay — backends intern types lazily).
pub fn footer_to_json(
    op_counts: &[(TraceOp, u64)],
    total_events: u64,
    types: &TableSnapshot,
) -> String {
    let ops: Vec<String> = op_counts
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(op, n)| format!("\"{}\":{n}", op.name()))
        .collect();
    format!(
        "{{\"footer\":true,\"metrics\":{{\"events\":{total_events},\"ops\":{{{}}}}},\"types\":{}}}",
        ops.join(","),
        snapshot_to_json(types)
    )
}

/// A fully parsed capture file.
#[derive(Clone, Debug)]
pub struct Capture {
    /// The header line.
    pub header: CaptureHeader,
    /// Every recorded event, in order.
    pub events: Vec<CaptureEvent>,
    /// Final type snapshot from the footer, if the capture was
    /// finalized cleanly (use [`Capture::types`] for the right one).
    pub footer_types: Option<TableSnapshot>,
}

impl Capture {
    /// Parses a capture from its JSONL text.
    pub fn parse(text: &str) -> Result<Capture, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, first) = lines.next().ok_or("empty capture file")?;
        let header =
            header_from_json(&Json::parse(first).map_err(|e| format!("capture line 1: {e}"))?)?;
        let mut events = Vec::new();
        let mut footer_types = None;
        for (i, line) in lines {
            let j = Json::parse(line).map_err(|e| format!("capture line {}: {e}", i + 1))?;
            if j.get("footer").and_then(Json::as_bool) == Some(true) {
                if let Some(t) = j.get("types") {
                    footer_types = Some(snapshot_from_json(t)?);
                }
                continue;
            }
            events.push(
                CaptureEvent::from_json(&j).map_err(|e| format!("capture line {}: {e}", i + 1))?,
            );
        }
        Ok(Capture {
            header,
            events,
            footer_types,
        })
    }

    /// Loads and parses a capture file.
    pub fn load(path: &str) -> Result<Capture, String> {
        let mut text = String::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        Capture::parse(&text)
    }

    /// The authoritative type snapshot: the footer's if the capture was
    /// finalized, else the header's.
    pub fn types(&self) -> &TableSnapshot {
        self.footer_types.as_ref().unwrap_or(&self.header.types)
    }
}

/// A `Write` implementation backed by a shared byte buffer — lets tests
/// and benches record in memory and read the capture back without
/// touching the filesystem.
#[derive(Clone, Debug, Default)]
pub struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl SharedSink {
    /// Creates an empty shared sink.
    pub fn new() -> SharedSink {
        SharedSink::default()
    }

    /// The bytes written so far, as UTF-8 text.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
    }
}

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duel_ctype::TypeTable;

    #[test]
    fn hex_roundtrip() {
        let data = vec![0x00, 0x7f, 0xff, 0xab];
        assert_eq!(hex_encode(&data), "007fffab");
        assert_eq!(hex_decode("007fffab").unwrap(), data);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    fn sample_events(tt: &mut TypeTable) -> Vec<CaptureEvent> {
        let int = tt.prim(Prim::Int);
        vec![
            CaptureEvent {
                seq: 0,
                call: CaptureCall::GetBytes {
                    addr: 0x1000,
                    len: 4,
                },
                reply: CaptureReply::Bytes(vec![1, 2, 3, 4]),
                ns: 120,
            },
            CaptureEvent {
                seq: 1,
                call: CaptureCall::GetVariable {
                    name: "x".into(),
                    frame: None,
                },
                reply: CaptureReply::Var(Some(VarInfo {
                    name: "x".into(),
                    addr: 0x1000,
                    ty: int,
                    kind: VarKind::Global,
                })),
                ns: 80,
            },
            CaptureEvent {
                seq: 2,
                call: CaptureCall::CallFunc {
                    name: "f".into(),
                    args: vec![CallValue {
                        ty: int,
                        bytes: vec![7, 0, 0, 0],
                    }],
                },
                reply: CaptureReply::Err(TargetError::CallFailed {
                    func: "f".into(),
                    reason: "no \"such\" fn".into(),
                }),
                ns: 999,
            },
            CaptureEvent {
                seq: 3,
                call: CaptureCall::TakeOutput,
                reply: CaptureReply::Output("hello\nworld".into()),
                ns: 5,
            },
            CaptureEvent {
                seq: 4,
                call: CaptureCall::GetBytes { addr: 0x10, len: 4 },
                reply: CaptureReply::Err(TargetError::IllegalMemory { addr: 0x10, len: 4 }),
                ns: 40,
            },
            CaptureEvent {
                seq: 5,
                call: CaptureCall::MultiRead {
                    ranges: vec![(0x1000, 4), (0x1010, 8), (0x10, 4)],
                },
                reply: CaptureReply::Multi(vec![
                    Ok(vec![1, 2, 3, 4]),
                    Ok(vec![9, 9, 9, 9, 9, 9, 9, 9]),
                    Err(TargetError::IllegalMemory { addr: 0x10, len: 4 }),
                ]),
                ns: 60,
            },
        ]
    }

    #[test]
    fn event_json_roundtrip() {
        let mut tt = TypeTable::new();
        for ev in sample_events(&mut tt) {
            let line = ev.to_json_line();
            let back = CaptureEvent::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(back, ev, "line: {line}");
        }
    }

    #[test]
    fn whole_capture_roundtrip() {
        let mut tt = TypeTable::new();
        let int = tt.prim(Prim::Int);
        let (rid, sty) = tt.declare_struct("node");
        let pnode = tt.pointer(sty);
        tt.define_record(rid, vec![Field::new("v", int), Field::new("next", pnode)]);
        tt.define_typedef("node_t", sty);

        let events = sample_events(&mut tt);
        let snap = tt.snapshot();
        let mut text = String::new();
        text.push_str(&header_to_json("sim", "combined", &Abi::lp64(), &snap));
        text.push('\n');
        for ev in &events {
            text.push_str(&ev.to_json_line());
            text.push('\n');
        }
        text.push_str(&footer_to_json(
            &[(TraceOp::GetBytes, 2), (TraceOp::PutBytes, 0)],
            events.len() as u64,
            &snap,
        ));
        text.push('\n');

        let cap = Capture::parse(&text).unwrap();
        assert_eq!(cap.header.backend, "sim");
        assert_eq!(cap.header.scenario, "combined");
        assert_eq!(cap.header.abi, Abi::lp64());
        assert_eq!(cap.events, events);
        assert_eq!(cap.types(), &snap);

        // The snapshot restores a table where the recorded ids resolve.
        let back = TypeTable::from_snapshot(cap.types());
        assert_eq!(back.typedef("node_t"), Some(sty));
        assert_eq!(back.kind(pnode), &TypeKind::Pointer(sty));
    }

    #[test]
    fn unfinalized_capture_falls_back_to_header_types() {
        let tt = TypeTable::new();
        let snap = tt.snapshot();
        let text = header_to_json("sim", "s", &Abi::ilp32_be(), &snap) + "\n";
        let cap = Capture::parse(&text).unwrap();
        assert!(cap.footer_types.is_none());
        assert_eq!(cap.types(), &snap);
        assert_eq!(cap.header.abi.endian, Endian::Big);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = r#"{"schema_version":99,"name":"duel_capture","config":{},"types":{}}"#;
        let err = Capture::parse(text).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        let text = r#"{"schema_version":1,"name":"other","config":{},"types":{}}"#;
        assert!(Capture::parse(text).is_err());
    }

    #[test]
    fn older_schema_versions_still_parse() {
        // A v1 capture (pre-multi_read) written by an older build.
        let tt = TypeTable::new();
        let snap = tt.snapshot();
        let text = header_to_json("sim", "s", &Abi::lp64(), &snap).replacen(
            "\"schema_version\":2",
            "\"schema_version\":1",
            1,
        ) + "\n";
        let cap = Capture::parse(&text).unwrap();
        assert_eq!(cap.header.schema_version, 1);
    }

    #[test]
    fn all_error_kinds_roundtrip() {
        let errs = [
            TargetError::IllegalMemory { addr: 1, len: 2 },
            TargetError::UnknownSymbol("s".into()),
            TargetError::UnknownFunction("f".into()),
            TargetError::CallFailed {
                func: "f".into(),
                reason: "r".into(),
            },
            TargetError::UnsupportedWidth { bytes: 16 },
            TargetError::ReplayDivergence {
                at: 3,
                expected: "get_bytes 0x1000+4".into(),
                got: "put_bytes 0x2000+8".into(),
            },
            TargetError::Backend("b".into()),
            TargetError::Timeout { ms: 10 },
            TargetError::Truncated {
                addr: 1,
                wanted: 4,
                got: 2,
            },
        ];
        for e in errs {
            let j = Json::parse(&target_error_to_json(&e)).unwrap();
            assert_eq!(target_error_from_json(&j).unwrap(), e);
        }
    }

    #[test]
    fn shared_sink_accumulates() {
        let sink = SharedSink::new();
        let mut w = sink.clone();
        w.write_all(b"abc").unwrap();
        w.write_all(b"def").unwrap();
        assert_eq!(sink.contents(), "abcdef");
    }
}
