//! Self-hosted introspection: the debugger's own telemetry as a
//! synthetic debuggee.
//!
//! The paper's thesis is that one expression language beats a zoo of
//! fixed debugger commands — yet our own observability surface
//! (`.top`, `.stats`, `.trace dump`) is exactly such a zoo. This
//! module closes the loop: [`MetaSnapshot`] freezes every telemetry
//! source the tower publishes (the span ring, the wire-event ring, the
//! metrics registry, cache/retry/supervision counters, the replayed
//! capture header), and [`MetaTarget`] materializes that snapshot as
//! an ordinary [`Target`] — a synthetic C type table plus a little-
//! endian arena served through `get_bytes` — so **every DUEL operator
//! works on it unchanged**: generators, filters, reductions, sorts,
//! structure traversal.
//!
//! Root symbols of the synthetic image:
//!
//! | symbol     | type                        | contents                         |
//! |------------|-----------------------------|----------------------------------|
//! | `spans`    | `struct duel_span[nspans]`  | span ring, completed then open   |
//! | `events`   | `struct duel_wire_event[nevents]` | wire-event ring            |
//! | `counters` | `struct duel_counter[ncounters]` | registry counters, by name  |
//! | `hists`    | `struct duel_hist[nhists]`  | registry log₂ histograms         |
//! | `cache`    | `struct duel_cache`         | page cache + lookup memo stats   |
//! | `breaker`  | `struct duel_breaker`       | supervision + retry state        |
//! | `capture`  | `struct duel_capture`       | replayed capture header (if any) |
//!
//! `nspans`/`nevents`/`ncounters`/`nhists` are `unsigned long long`
//! globals, so `spans[..nspans].name` needs no out-of-band count.
//!
//! The snapshot is a *copy*: querying it can perturb neither the
//! debuggee nor the live telemetry it was taken from.

use std::collections::HashMap;

use duel_ctype::{Abi, EnumId, Field, Prim, RecordId, RecordLayout, TypeId, TypeTable};

use crate::cache::CacheStats;
use crate::error::{TargetError, TargetResult};
use crate::iface::{CallValue, FrameInfo, Target, VarInfo, VarKind};
use crate::metrics::MetricsSnapshot;
use crate::retry::RetryStats;
use crate::span::SpanSnapshot;
use crate::supervise::{CircuitState, SupervisorStats};
use crate::trace::TraceEvent;

/// Base address of the synthetic telemetry arena (same convention as
/// the simulated debuggee: NULL and small integers stay unmapped).
pub const META_BASE: u64 = 0x1000;

/// Growth cap for [`Target::alloc_space`] scratch allocations.
const META_ALLOC_CAP: u64 = 1 << 20;

/// Identity of the capture being replayed, for the `capture` root
/// symbol of a meta image taken over an offline session.
#[derive(Clone, Debug, Default)]
pub struct MetaCapture {
    /// Backend label recorded in the capture header (`sim`, `minic`…).
    pub backend: String,
    /// Scenario label recorded in the capture header.
    pub scenario: String,
    /// Events held by the capture.
    pub events: u64,
}

/// A frozen, point-in-time copy of every telemetry source a debugging
/// session publishes. Building one touches only snapshot APIs — it
/// never blocks the hot path for more than the rings' own locks.
#[derive(Clone, Debug)]
pub struct MetaSnapshot {
    /// The causal span ring (completed + open spans).
    pub spans: SpanSnapshot,
    /// The wire-event ring, oldest first.
    pub events: Vec<TraceEvent>,
    /// The always-on metrics registry (counters + log₂ histograms).
    pub metrics: MetricsSnapshot,
    /// Page-cache and lookup-memoization counters.
    pub cache: CacheStats,
    /// Pages resident in the cache at snapshot time.
    pub resident_pages: u64,
    /// Retry-layer counters.
    pub retry: RetryStats,
    /// Supervision counters.
    pub supervise: SupervisorStats,
    /// Circuit-breaker state.
    pub circuit: CircuitState,
    /// The replayed capture's identity, when the session is offline.
    pub capture: Option<MetaCapture>,
}

impl Default for MetaSnapshot {
    fn default() -> MetaSnapshot {
        MetaSnapshot {
            spans: SpanSnapshot::default(),
            events: Vec::new(),
            metrics: MetricsSnapshot::default(),
            cache: CacheStats::default(),
            resident_pages: 0,
            retry: RetryStats::default(),
            supervise: SupervisorStats::default(),
            circuit: CircuitState::Closed,
            capture: None,
        }
    }
}

/// Numeric code of a circuit state (`breaker.state_code`).
pub fn circuit_code(state: CircuitState) -> u64 {
    match state {
        CircuitState::Closed => 0,
        CircuitState::Open => 1,
        CircuitState::HalfOpen => 2,
    }
}

/// Parses a wire-event detail of the `0xADDR+LEN` shape into
/// `(addr, len)`; symbol details (`hash`, …) yield `(0, 0)`.
pub fn parse_addr_len(detail: &str) -> (u64, u64) {
    let Some(rest) = detail.strip_prefix("0x") else {
        return (0, 0);
    };
    let (hex, len) = match rest.split_once('+') {
        Some((h, l)) => (h, l.parse().unwrap_or(0)),
        None => (rest, 0),
    };
    (u64::from_str_radix(hex, 16).unwrap_or(0), len)
}

/// Upper bound of the bucket holding the `q`-quantile sample of a log₂
/// histogram (same semantics as `Histogram::quantile`, but over a
/// frozen bucket vector).
pub fn bucket_quantile(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return 1u64 << (i + 1).min(63);
        }
    }
    u64::MAX
}

/// One synthesized struct: its type, record id, and computed layout.
struct StructDef {
    layout: RecordLayout,
}

impl StructDef {
    fn new(tt: &TypeTable, abi: &Abi, rid: RecordId) -> StructDef {
        let layout = tt
            .record_layout(rid, abi)
            .expect("meta struct layouts are complete by construction");
        StructDef { layout }
    }

    fn size(&self) -> u64 {
        self.layout.size
    }
}

/// Writes one struct instance field by field, at the offsets the type
/// table computed — the arena layout and the C layout can never skew.
struct FieldWriter<'a> {
    mem: &'a mut [u8],
    base: usize,
    def: &'a StructDef,
    next: usize,
}

impl<'a> FieldWriter<'a> {
    fn new(mem: &'a mut [u8], base: usize, def: &'a StructDef) -> FieldWriter<'a> {
        FieldWriter {
            mem,
            base,
            def,
            next: 0,
        }
    }

    fn field_off(&mut self) -> usize {
        let off = self.def.layout.fields[self.next].offset as usize;
        self.next += 1;
        self.base + off
    }

    /// Writes the next field as a little-endian `unsigned long long`.
    fn u64(&mut self, v: u64) {
        let off = self.field_off();
        self.mem[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Writes the next field as a NUL-terminated `char[cap]` (the
    /// string is truncated to `cap - 1` bytes on a char boundary).
    fn str(&mut self, cap: usize, s: &str) {
        let off = self.field_off();
        let mut end = s.len().min(cap - 1);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        self.mem[off..off + end].copy_from_slice(&s.as_bytes()[..end]);
        // The rest of the field is already zeroed.
    }

    /// Writes the next field as an `unsigned long long[n]` array.
    fn u64_array(&mut self, vals: &[u64]) {
        let off = self.field_off();
        for (i, v) in vals.iter().enumerate() {
            self.mem[off + i * 8..off + i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
    }
}

/// String-field capacities of the synthetic structs.
const KIND_CAP: usize = 12;
const NAME_CAP: usize = 32;
const DETAIL_CAP: usize = 48;
const OP_CAP: usize = 16;
const OUTCOME_CAP: usize = 12;
const METRIC_CAP: usize = 48;
const STATE_CAP: usize = 12;
const BACKEND_CAP: usize = 16;
const SCENARIO_CAP: usize = 48;

/// A synthetic in-process [`Target`] whose memory image is a frozen
/// [`MetaSnapshot`] of the debugger's own telemetry.
///
/// See the module docs for the root symbols. The image is served from
/// a flat little-endian arena under [`Abi::lp64`]; writes land in the
/// copy (harmless), scratch allocation bump-extends the arena, and
/// function calls / frames are honestly absent.
pub struct MetaTarget {
    abi: Abi,
    types: TypeTable,
    mem: Vec<u8>,
    globals: HashMap<String, (u64, TypeId)>,
    alloc_extra: u64,
}

impl MetaTarget {
    /// Materializes a snapshot: synthesizes the type table, lays the
    /// data out as an arena, and registers the root symbols.
    pub fn new(snap: &MetaSnapshot) -> MetaTarget {
        let abi = Abi::lp64();
        let mut tt = TypeTable::new();
        let u64_ = tt.prim(Prim::ULongLong);
        let ch = tt.prim(Prim::Char);
        let chars = |n: usize, tt: &mut TypeTable| tt.array(ch, Some(n as u64));

        // ----- struct duel_span ---------------------------------------
        let kind_t = chars(KIND_CAP, &mut tt);
        let name_t = chars(NAME_CAP, &mut tt);
        let detail_t = chars(DETAIL_CAP, &mut tt);
        let (span_rid, span_ty) = tt.struct_type(
            "duel_span",
            vec![
                Field::new("trace", u64_),
                Field::new("id", u64_),
                Field::new("parent", u64_),
                Field::new("start_ns", u64_),
                Field::new("dur_ns", u64_),
                Field::new("self_ns", u64_),
                Field::new("reads", u64_),
                Field::new("open", u64_),
                Field::new("kind", kind_t),
                Field::new("name", name_t),
                Field::new("detail", detail_t),
            ],
        );

        // ----- struct duel_wire_event ---------------------------------
        let op_t = chars(OP_CAP, &mut tt);
        let outcome_t = chars(OUTCOME_CAP, &mut tt);
        let edetail_t = chars(DETAIL_CAP, &mut tt);
        let (event_rid, event_ty) = tt.struct_type(
            "duel_wire_event",
            vec![
                Field::new("seq", u64_),
                Field::new("op_code", u64_),
                Field::new("outcome_code", u64_),
                Field::new("addr", u64_),
                Field::new("len", u64_),
                Field::new("lat_ns", u64_),
                Field::new("ts_ns", u64_),
                Field::new("trace", u64_),
                Field::new("span", u64_),
                Field::new("op", op_t),
                Field::new("outcome", outcome_t),
                Field::new("detail", edetail_t),
            ],
        );

        // ----- struct duel_counter / struct duel_hist -----------------
        let metric_t = chars(METRIC_CAP, &mut tt);
        let (counter_rid, counter_ty) = tt.struct_type(
            "duel_counter",
            vec![Field::new("value", u64_), Field::new("name", metric_t)],
        );
        let hist_buckets = snap
            .metrics
            .histograms
            .iter()
            .map(|(_, b)| b.len())
            .max()
            .unwrap_or(crate::metrics::METRIC_HIST_BUCKETS);
        let buckets_t = tt.array(u64_, Some(hist_buckets as u64));
        let hmetric_t = chars(METRIC_CAP, &mut tt);
        let (hist_rid, hist_ty) = tt.struct_type(
            "duel_hist",
            vec![
                Field::new("count", u64_),
                Field::new("p50", u64_),
                Field::new("p99", u64_),
                Field::new("buckets", buckets_t),
                Field::new("name", hmetric_t),
            ],
        );

        // ----- struct duel_cache --------------------------------------
        let (cache_rid, cache_ty) = tt.struct_type(
            "duel_cache",
            vec![
                Field::new("page_hits", u64_),
                Field::new("page_misses", u64_),
                Field::new("backend_reads", u64_),
                Field::new("wire_bytes", u64_),
                Field::new("lookup_hits", u64_),
                Field::new("lookup_misses", u64_),
                Field::new("write_throughs", u64_),
                Field::new("invalidations", u64_),
                Field::new("multi_reads", u64_),
                Field::new("multi_ranges", u64_),
                Field::new("pages_prefetched", u64_),
                Field::new("readahead_pages", u64_),
                Field::new("resident_pages", u64_),
            ],
        );

        // ----- struct duel_breaker ------------------------------------
        let state_t = chars(STATE_CAP, &mut tt);
        let (breaker_rid, breaker_ty) = tt.struct_type(
            "duel_breaker",
            vec![
                Field::new("state_code", u64_),
                Field::new("operations", u64_),
                Field::new("failures", u64_),
                Field::new("probes", u64_),
                Field::new("probe_failures", u64_),
                Field::new("trips", u64_),
                Field::new("reconnects", u64_),
                Field::new("reconnect_failures", u64_),
                Field::new("fast_fails", u64_),
                Field::new("stale_reads", u64_),
                Field::new("retry_operations", u64_),
                Field::new("retry_retries", u64_),
                Field::new("retry_give_ups", u64_),
                Field::new("retry_backoff_ns", u64_),
                Field::new("state", state_t),
            ],
        );

        // ----- struct duel_capture ------------------------------------
        let backend_t = chars(BACKEND_CAP, &mut tt);
        let cscenario_t = chars(SCENARIO_CAP, &mut tt);
        let (capture_rid, capture_ty) = tt.struct_type(
            "duel_capture",
            vec![
                Field::new("events", u64_),
                Field::new("backend", backend_t),
                Field::new("scenario", cscenario_t),
            ],
        );

        let span_def = StructDef::new(&tt, &abi, span_rid);
        let event_def = StructDef::new(&tt, &abi, event_rid);
        let counter_def = StructDef::new(&tt, &abi, counter_rid);
        let hist_def = StructDef::new(&tt, &abi, hist_rid);
        let cache_def = StructDef::new(&tt, &abi, cache_rid);
        let breaker_def = StructDef::new(&tt, &abi, breaker_rid);
        let capture_def = StructDef::new(&tt, &abi, capture_rid);

        // ----- arena layout -------------------------------------------
        // Completed spans first (oldest first), then still-open ones —
        // the same order `SpanSnapshot::aggregate` visits.
        let all_spans: Vec<(&crate::span::SpanRecord, bool)> = snap
            .spans
            .spans
            .iter()
            .map(|s| (s, false))
            .chain(snap.spans.open.iter().map(|s| (s, true)))
            .collect();
        let nspans = all_spans.len() as u64;
        let nevents = snap.events.len() as u64;
        let ncounters = snap.metrics.counters.len() as u64;
        let nhists = snap.metrics.histograms.len() as u64;

        let mut globals = HashMap::new();
        let mut cursor = META_BASE;
        let mut place = |name: &str, ty: TypeId, size: u64, align: u64| {
            let a = align.max(1);
            cursor = cursor.div_ceil(a) * a;
            let addr = cursor;
            cursor += size;
            globals.insert(name.to_string(), (addr, ty));
            addr
        };

        let spans_ty = tt.array(span_ty, Some(nspans));
        let spans_addr = place("spans", spans_ty, nspans * span_def.size(), 8);
        let events_ty = tt.array(event_ty, Some(nevents));
        let events_addr = place("events", events_ty, nevents * event_def.size(), 8);
        let counters_ty = tt.array(counter_ty, Some(ncounters));
        let counters_addr = place("counters", counters_ty, ncounters * counter_def.size(), 8);
        let hists_ty = tt.array(hist_ty, Some(nhists));
        let hists_addr = place("hists", hists_ty, nhists * hist_def.size(), 8);
        let cache_addr = place("cache", cache_ty, cache_def.size(), 8);
        let breaker_addr = place("breaker", breaker_ty, breaker_def.size(), 8);
        let capture_addr = if snap.capture.is_some() {
            Some(place("capture", capture_ty, capture_def.size(), 8))
        } else {
            None
        };
        for (name, v) in [
            ("nspans", nspans),
            ("nevents", nevents),
            ("ncounters", ncounters),
            ("nhists", nhists),
        ] {
            let addr = place(name, u64_, 8, 8);
            let _ = (addr, v); // encoded below, once mem exists
        }

        let mut mem = vec![0u8; (cursor - META_BASE) as usize];
        let at = |addr: u64| (addr - META_BASE) as usize;

        // ----- encode spans -------------------------------------------
        // Exclusive time (children subtracted) and per-span attributed
        // reads, computed exactly as `.top`'s aggregation does.
        let mut child_ns: HashMap<u64, u64> = HashMap::new();
        for (s, _) in &all_spans {
            if s.parent != 0 {
                *child_ns.entry(s.parent).or_insert(0) += s.dur_ns;
            }
        }
        let mut span_reads: HashMap<u64, u64> = HashMap::new();
        for e in &snap.events {
            if e.span != 0 {
                *span_reads.entry(e.span).or_insert(0) += 1;
            }
        }
        for (i, (s, open)) in all_spans.iter().enumerate() {
            let base = at(spans_addr) + i * span_def.size() as usize;
            let children = child_ns.get(&s.id).copied().unwrap_or(0);
            let mut w = FieldWriter::new(&mut mem, base, &span_def);
            w.u64(s.trace);
            w.u64(s.id);
            w.u64(s.parent);
            w.u64(s.start_ns);
            w.u64(s.dur_ns);
            w.u64(s.dur_ns.saturating_sub(children.min(s.dur_ns)));
            w.u64(span_reads.get(&s.id).copied().unwrap_or(0));
            w.u64(*open as u64);
            w.str(KIND_CAP, s.kind.name());
            w.str(NAME_CAP, s.name);
            w.str(DETAIL_CAP, &s.detail);
        }

        // ----- encode events ------------------------------------------
        for (i, e) in snap.events.iter().enumerate() {
            let base = at(events_addr) + i * event_def.size() as usize;
            let (addr, len) = parse_addr_len(&e.detail);
            let mut w = FieldWriter::new(&mut mem, base, &event_def);
            w.u64(e.seq);
            w.u64(e.op.index() as u64);
            w.u64(e.outcome.index() as u64);
            w.u64(addr);
            w.u64(len);
            w.u64(e.nanos);
            w.u64(e.ts_ns);
            w.u64(e.trace);
            w.u64(e.span);
            w.str(OP_CAP, e.op.name());
            w.str(OUTCOME_CAP, e.outcome.name());
            w.str(DETAIL_CAP, &e.detail);
        }

        // ----- encode metrics -----------------------------------------
        for (i, (name, v)) in snap.metrics.counters.iter().enumerate() {
            let base = at(counters_addr) + i * counter_def.size() as usize;
            let mut w = FieldWriter::new(&mut mem, base, &counter_def);
            w.u64(*v);
            w.str(METRIC_CAP, name);
        }
        for (i, (name, buckets)) in snap.metrics.histograms.iter().enumerate() {
            let base = at(hists_addr) + i * hist_def.size() as usize;
            let mut padded = buckets.clone();
            padded.resize(hist_buckets, 0);
            let mut w = FieldWriter::new(&mut mem, base, &hist_def);
            w.u64(buckets.iter().sum());
            w.u64(bucket_quantile(buckets, 0.5));
            w.u64(bucket_quantile(buckets, 0.99));
            w.u64_array(&padded);
            w.str(METRIC_CAP, name);
        }

        // ----- encode cache / breaker / capture -----------------------
        {
            let c = &snap.cache;
            let mut w = FieldWriter::new(&mut mem, at(cache_addr), &cache_def);
            for v in [
                c.page_hits,
                c.page_misses,
                c.backend_reads,
                c.wire_bytes,
                c.lookup_hits,
                c.lookup_misses,
                c.write_throughs,
                c.invalidations,
                c.multi_reads,
                c.multi_ranges,
                c.pages_prefetched,
                c.readahead_pages,
                snap.resident_pages,
            ] {
                w.u64(v);
            }
        }
        {
            let s = &snap.supervise;
            let r = &snap.retry;
            let mut w = FieldWriter::new(&mut mem, at(breaker_addr), &breaker_def);
            for v in [
                circuit_code(snap.circuit),
                s.operations,
                s.failures,
                s.probes,
                s.probe_failures,
                s.trips,
                s.reconnects,
                s.reconnect_failures,
                s.fast_fails,
                s.stale_reads,
                r.operations,
                r.retries,
                r.give_ups,
                r.backoff_ns,
            ] {
                w.u64(v);
            }
            w.str(STATE_CAP, snap.circuit.name());
        }
        if let (Some(addr), Some(cap)) = (capture_addr, &snap.capture) {
            let mut w = FieldWriter::new(&mut mem, at(addr), &capture_def);
            w.u64(cap.events);
            w.str(BACKEND_CAP, &cap.backend);
            w.str(SCENARIO_CAP, &cap.scenario);
        }
        for (name, v) in [
            ("nspans", nspans),
            ("nevents", nevents),
            ("ncounters", ncounters),
            ("nhists", nhists),
        ] {
            let (addr, _) = globals[name];
            let off = at(addr);
            mem[off..off + 8].copy_from_slice(&v.to_le_bytes());
        }

        MetaTarget {
            abi,
            types: tt,
            mem,
            globals,
            alloc_extra: 0,
        }
    }

    fn contains(&self, addr: u64, len: u64) -> bool {
        let end = META_BASE + self.mem.len() as u64;
        addr >= META_BASE && addr.checked_add(len).is_some_and(|e| e <= end)
    }

    /// The root symbols of the image, sorted by name (for `.query`
    /// usage text and tests).
    pub fn symbol_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.globals.keys().cloned().collect();
        v.sort();
        v
    }

    /// Size of the encoded arena in bytes.
    pub fn arena_len(&self) -> usize {
        self.mem.len()
    }
}

impl Target for MetaTarget {
    fn abi(&self) -> &Abi {
        &self.abi
    }

    fn types(&self) -> &TypeTable {
        &self.types
    }

    fn types_mut(&mut self) -> &mut TypeTable {
        &mut self.types
    }

    fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        let len = buf.len() as u64;
        if !self.contains(addr, len) {
            return Err(TargetError::IllegalMemory { addr, len });
        }
        let off = (addr - META_BASE) as usize;
        buf.copy_from_slice(&self.mem[off..off + buf.len()]);
        Ok(())
    }

    fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
        let len = bytes.len() as u64;
        if !self.contains(addr, len) {
            return Err(TargetError::IllegalMemory { addr, len });
        }
        let off = (addr - META_BASE) as usize;
        self.mem[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64> {
        let a = align.max(1);
        let end = META_BASE + self.mem.len() as u64;
        let addr = end.div_ceil(a) * a;
        let new_end = addr
            .checked_add(size)
            .ok_or_else(|| TargetError::Backend("allocation overflows the arena".into()))?;
        let grow = new_end - end;
        if self.alloc_extra + grow > META_ALLOC_CAP {
            return Err(TargetError::Backend(format!(
                "meta arena allocation cap ({META_ALLOC_CAP} bytes) exceeded"
            )));
        }
        self.alloc_extra += grow;
        self.mem.resize((new_end - META_BASE) as usize, 0);
        Ok(addr)
    }

    fn call_func(&mut self, name: &str, _args: &[CallValue]) -> TargetResult<CallValue> {
        Err(TargetError::UnknownFunction(name.to_string()))
    }

    fn get_variable(&mut self, name: &str) -> Option<VarInfo> {
        let (addr, ty) = *self.globals.get(name)?;
        Some(VarInfo {
            name: name.to_string(),
            addr,
            ty,
            kind: VarKind::Global,
        })
    }

    fn get_variable_in_frame(&mut self, _name: &str, _frame: usize) -> Option<VarInfo> {
        None
    }

    fn lookup_typedef(&mut self, name: &str) -> Option<TypeId> {
        self.types.typedef(name)
    }

    fn lookup_struct(&mut self, tag: &str) -> Option<RecordId> {
        self.types.struct_tag(tag)
    }

    fn lookup_union(&mut self, tag: &str) -> Option<RecordId> {
        self.types.union_tag(tag)
    }

    fn lookup_enum(&mut self, _tag: &str) -> Option<EnumId> {
        None
    }

    fn has_function(&mut self, _name: &str) -> bool {
        false
    }

    fn frame_count(&mut self) -> usize {
        0
    }

    fn frame_info(&mut self, _n: usize) -> Option<FrameInfo> {
        None
    }

    fn is_mapped(&mut self, addr: u64, len: u64) -> bool {
        self.contains(addr, len)
    }

    fn take_output(&mut self) -> String {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanKind, SpanRecord};
    use crate::trace::{TraceOp, TraceOutcome};

    fn sample_snapshot() -> MetaSnapshot {
        let root = SpanRecord {
            trace: 1,
            id: 1,
            parent: 0,
            kind: SpanKind::Root,
            name: "eval",
            detail: "x[..4]".into(),
            start_ns: 0,
            dur_ns: 1000,
        };
        let node = SpanRecord {
            trace: 1,
            id: 2,
            parent: 1,
            kind: SpanKind::Node,
            name: "index",
            detail: "x[i]".into(),
            start_ns: 100,
            dur_ns: 400,
        };
        let snap = SpanSnapshot {
            spans: vec![root, node],
            open: Vec::new(),
            dropped: 0,
        };
        let events = vec![TraceEvent {
            seq: 1,
            op: TraceOp::GetBytes,
            detail: "0x1040+16".into(),
            outcome: TraceOutcome::Ok,
            nanos: 250,
            ts_ns: 120,
            trace: 1,
            span: 2,
        }];
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.push(("eval.values".into(), 4));
        metrics
            .histograms
            .push(("eval.ticks".into(), vec![0, 2, 1]));
        let cache = CacheStats {
            page_hits: 7,
            backend_reads: 3,
            ..CacheStats::default()
        };
        MetaSnapshot {
            spans: snap,
            events,
            metrics,
            cache,
            resident_pages: 2,
            capture: Some(MetaCapture {
                backend: "sim".into(),
                scenario: "combined".into(),
                events: 9,
            }),
            ..MetaSnapshot::default()
        }
    }

    fn read_u64(t: &mut MetaTarget, addr: u64) -> u64 {
        let mut buf = [0u8; 8];
        t.get_bytes(addr, &mut buf).unwrap();
        u64::from_le_bytes(buf)
    }

    #[test]
    fn roots_and_counts_are_registered() {
        let mut t = MetaTarget::new(&sample_snapshot());
        assert_eq!(
            t.symbol_names(),
            vec![
                "breaker",
                "cache",
                "capture",
                "counters",
                "events",
                "hists",
                "ncounters",
                "nevents",
                "nhists",
                "nspans",
                "spans",
            ]
        );
        let nspans = t.get_variable("nspans").unwrap();
        assert_eq!(read_u64(&mut t, nspans.addr), 2);
        let nevents = t.get_variable("nevents").unwrap();
        assert_eq!(read_u64(&mut t, nevents.addr), 1);
    }

    #[test]
    fn span_fields_round_trip_through_the_arena() {
        let snap = sample_snapshot();
        let mut t = MetaTarget::new(&snap);
        let spans = t.get_variable("spans").unwrap();
        let rid = t.lookup_struct("duel_span").unwrap();
        let layout = t.types().record_layout(rid, &Abi::lp64()).unwrap();
        let rec = t.types().record(rid).clone();
        // Row 0 is the root; row 1 the node under it.
        let node = &snap.spans.spans[1];
        assert_eq!(node.kind, SpanKind::Node);
        let node_base = spans.addr + layout.size;
        let field = |t: &mut MetaTarget, name: &str| {
            let i = rec.field_index(name).unwrap();
            read_u64(t, node_base + layout.fields[i].offset)
        };
        assert_eq!(field(&mut t, "id"), node.id);
        assert_eq!(field(&mut t, "dur_ns"), node.dur_ns);
        assert_eq!(field(&mut t, "self_ns"), node.dur_ns); // leaf: no children
        assert_eq!(field(&mut t, "reads"), 1); // the one attributed event
                                               // Root row: exclusive time = 1000 - 400.
        let i = rec.field_index("self_ns").unwrap();
        assert_eq!(read_u64(&mut t, spans.addr + layout.fields[i].offset), 600);
        // The name char array is NUL-terminated.
        let i = rec.field_index("name").unwrap();
        let mut buf = [0u8; NAME_CAP];
        t.get_bytes(node_base + layout.fields[i].offset, &mut buf)
            .unwrap();
        assert_eq!(&buf[..6], b"index\0");
    }

    #[test]
    fn event_addr_len_parse_from_detail() {
        assert_eq!(parse_addr_len("0x1040+16"), (0x1040, 16));
        assert_eq!(parse_addr_len("0xdead"), (0xdead, 0));
        assert_eq!(parse_addr_len("hash"), (0, 0));
        assert_eq!(parse_addr_len("0xzz+3"), (0, 3));
    }

    #[test]
    fn hist_quantiles_match_live_histograms() {
        let reg = crate::metrics::MetricsRegistry::new();
        let h = reg.histogram("h");
        for v in [1, 1, 1, 1000] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let (_, buckets) = &snap.histograms[0];
        assert_eq!(bucket_quantile(buckets, 0.5), h.quantile(0.5));
        assert_eq!(bucket_quantile(buckets, 0.99), h.quantile(0.99));
        assert_eq!(bucket_quantile(&[], 0.5), 0);
    }

    #[test]
    fn reads_outside_the_arena_fault() {
        let mut t = MetaTarget::new(&MetaSnapshot::default());
        let mut buf = [0u8; 4];
        assert!(matches!(
            t.get_bytes(0, &mut buf),
            Err(TargetError::IllegalMemory { .. })
        ));
        assert!(!t.is_mapped(0, 1));
        assert!(t.call_func("getpid", &[]).is_err());
        assert_eq!(t.frame_count(), 0);
    }

    #[test]
    fn alloc_space_bumps_past_the_image() {
        let mut t = MetaTarget::new(&MetaSnapshot::default());
        let before = t.arena_len();
        let addr = t.alloc_space(32, 8).unwrap();
        assert_eq!(addr % 8, 0);
        assert!(t.arena_len() >= before + 32);
        t.put_bytes(addr, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        t.get_bytes(addr, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
    }
}
