//! [`ChaosTarget`] — a scriptable failure-injection gate for chaos
//! testing the supervision stack.
//!
//! [`crate::FaultTarget`] injects *counted* failures for retry tests;
//! this module injects *modal* ones: the backend is Live, Dead (every
//! wire operation fails like a killed process), Hung (every operation
//! times out, modeling a stuck MI turn the watchdog had to kill), or
//! Garbling (every reply comes back as seeded gibberish). Modes are
//! switched either imperatively through a cloneable [`ChaosHandle`]
//! (the reconnect strategy of a supervised tower can `revive()` it,
//! playing the role of a process respawn) or declaratively through a
//! *script* of [`ChaosEvent`]s keyed by operation count — including
//! fully seeded random campaigns via [`ChaosHandle::campaign`], so a
//! failing chaos run reproduces from its seed alone.
//!
//! Only the four wire operations (`get_bytes`, `put_bytes`,
//! `alloc_space`, `call_func`) pass through the gate; symbol and type
//! lookups model debugger-side tables and stay transparent, mirroring
//! how the retry layer treats `Option`-returning operations.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::error::{TargetError, TargetResult};
use crate::iface::{CallValue, FrameInfo, ReadRange, Target, VarInfo};
use duel_ctype::{Abi, EnumId, RecordId, TypeId, TypeTable};

/// The gate's current behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosMode {
    /// Forward everything untouched.
    Live,
    /// Every wire operation fails like a killed backend process.
    Dead,
    /// Every wire operation times out (a hung MI turn, already killed
    /// by the deadline watchdog).
    Hung,
    /// Every wire operation fails with a seeded garbled-reply error.
    Garbling,
}

impl ChaosMode {
    /// Lower-case label for logs and `.stats` output.
    pub fn name(self) -> &'static str {
        match self {
            ChaosMode::Live => "live",
            ChaosMode::Dead => "dead",
            ChaosMode::Hung => "hung",
            ChaosMode::Garbling => "garbling",
        }
    }
}

/// A mode switch in a scripted campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Switch to [`ChaosMode::Dead`].
    Kill,
    /// Switch to [`ChaosMode::Hung`].
    Hang,
    /// Switch to [`ChaosMode::Garbling`].
    Garble,
    /// Switch back to [`ChaosMode::Live`].
    Revive,
}

/// One scripted event: after `at_op` wire operations have passed the
/// gate, perform `action`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Operation count (1-based) at which the action fires; events with
    /// `at_op <= ops` fire in script order.
    pub at_op: u64,
    /// The mode switch to perform.
    pub action: ChaosAction,
}

/// splitmix64 — the workspace's standard tiny deterministic generator
/// (same recurrence the vendored proptest shim uses).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug)]
struct ChaosState {
    mode: ChaosMode,
    /// Auto-revive after this many more gated operations.
    heal_in: Option<u64>,
    /// Pending scripted events, sorted by `at_op`.
    script: VecDeque<ChaosEvent>,
    /// Wire operations that have passed the gate.
    ops: u64,
    /// Failures injected so far.
    injected: u64,
    rng: u64,
}

impl ChaosState {
    fn apply(&mut self, action: ChaosAction) {
        self.mode = match action {
            ChaosAction::Kill => ChaosMode::Dead,
            ChaosAction::Hang => ChaosMode::Hung,
            ChaosAction::Garble => ChaosMode::Garbling,
            ChaosAction::Revive => ChaosMode::Live,
        };
        if action == ChaosAction::Revive {
            self.heal_in = None;
        }
    }
}

/// A cloneable remote control for a [`ChaosTarget`]. Tests (and the
/// supervised tower's reconnect strategy) hold one while the target
/// itself is buried inside a decorator stack.
#[derive(Clone, Debug)]
pub struct ChaosHandle(Arc<Mutex<ChaosState>>);

impl ChaosHandle {
    fn new(seed: u64) -> ChaosHandle {
        ChaosHandle(Arc::new(Mutex::new(ChaosState {
            mode: ChaosMode::Live,
            heal_in: None,
            script: VecDeque::new(),
            ops: 0,
            injected: 0,
            rng: seed,
        })))
    }

    /// Kills the backend: every wire operation now fails.
    pub fn kill(&self) {
        self.0.lock().unwrap().apply(ChaosAction::Kill);
    }

    /// Hangs the backend: every wire operation now times out.
    pub fn hang(&self) {
        self.0.lock().unwrap().apply(ChaosAction::Hang);
    }

    /// Garbles the backend: every reply is a seeded protocol error.
    pub fn garble(&self) {
        self.0.lock().unwrap().apply(ChaosAction::Garble);
    }

    /// Revives the backend (what a successful respawn does).
    pub fn revive(&self) {
        self.0.lock().unwrap().apply(ChaosAction::Revive);
    }

    /// Auto-revives after `n` more gated operations (models a backend
    /// that comes back on its own, for mean-time-to-recovery runs).
    pub fn heal_after(&self, n: u64) {
        self.0.lock().unwrap().heal_in = Some(n);
    }

    /// Installs a scripted campaign (replacing any pending script).
    /// Events fire as the gate's operation count reaches each `at_op`.
    pub fn load_script(&self, mut events: Vec<ChaosEvent>) {
        events.sort_by_key(|e| e.at_op);
        self.0.lock().unwrap().script = events.into();
    }

    /// Generates and installs a seeded random campaign: `events` mode
    /// switches spread over the next `span` operations. The same seed
    /// always produces the same script — a failing run reproduces from
    /// its seed alone. Returns the generated script for logging.
    pub fn campaign(&self, seed: u64, events: usize, span: u64) -> Vec<ChaosEvent> {
        let mut s = seed;
        let mut script: Vec<ChaosEvent> = (0..events)
            .map(|_| {
                let at_op = 1 + splitmix64(&mut s) % span.max(1);
                let action = match splitmix64(&mut s) % 4 {
                    0 => ChaosAction::Kill,
                    1 => ChaosAction::Hang,
                    2 => ChaosAction::Garble,
                    _ => ChaosAction::Revive,
                };
                ChaosEvent { at_op, action }
            })
            .collect();
        script.sort_by_key(|e| e.at_op);
        self.load_script(script.clone());
        script
    }

    /// The gate's current mode.
    pub fn mode(&self) -> ChaosMode {
        self.0.lock().unwrap().mode
    }

    /// Wire operations that have passed the gate so far.
    pub fn ops(&self) -> u64 {
        self.0.lock().unwrap().ops
    }

    /// Failures injected so far.
    pub fn injected(&self) -> u64 {
        self.0.lock().unwrap().injected
    }
}

/// A [`Target`] decorator that injects modal, scriptable failures into
/// the four wire operations. See the module docs.
#[derive(Debug)]
pub struct ChaosTarget<T: Target> {
    inner: T,
    handle: ChaosHandle,
}

impl<T: Target> ChaosTarget<T> {
    /// Wraps `inner` with a live gate (seed 0).
    pub fn new(inner: T) -> ChaosTarget<T> {
        ChaosTarget::with_seed(inner, 0)
    }

    /// Wraps `inner` with a live gate whose garbled replies draw from
    /// `seed`.
    pub fn with_seed(inner: T, seed: u64) -> ChaosTarget<T> {
        ChaosTarget {
            inner,
            handle: ChaosHandle::new(seed),
        }
    }

    /// A remote control for this gate.
    pub fn handle(&self) -> ChaosHandle {
        self.handle.clone()
    }

    /// The wrapped target.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped target.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Advances the gate by one operation and returns the failure to
    /// inject, if any.
    fn gate(&mut self) -> TargetResult<()> {
        let mut st = self.handle.0.lock().unwrap();
        st.ops += 1;
        let now = st.ops;
        while let Some(ev) = st.script.front().copied() {
            if ev.at_op > now {
                break;
            }
            st.script.pop_front();
            st.apply(ev.action);
        }
        if let Some(left) = st.heal_in {
            if left == 0 {
                st.mode = ChaosMode::Live;
                st.heal_in = None;
            } else {
                st.heal_in = Some(left - 1);
            }
        }
        match st.mode {
            ChaosMode::Live => Ok(()),
            ChaosMode::Dead => {
                st.injected += 1;
                Err(TargetError::Backend("chaos: backend killed".to_string()))
            }
            ChaosMode::Hung => {
                st.injected += 1;
                // The deadline watchdog has already killed the turn by
                // the time the caller sees anything — model that.
                Err(TargetError::Timeout { ms: 1000 })
            }
            ChaosMode::Garbling => {
                st.injected += 1;
                let noise = splitmix64(&mut st.rng);
                Err(TargetError::Backend(format!(
                    "chaos: garbled reply 0x{noise:016x}"
                )))
            }
        }
    }
}

impl<T: Target> Target for ChaosTarget<T> {
    fn abi(&self) -> &Abi {
        self.inner.abi()
    }

    fn types(&self) -> &TypeTable {
        self.inner.types()
    }

    fn types_mut(&mut self) -> &mut TypeTable {
        self.inner.types_mut()
    }

    fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        self.gate()?;
        self.inner.get_bytes(addr, buf)
    }

    fn get_bytes_multi(&mut self, ranges: &mut [ReadRange<'_>]) -> Vec<TargetResult<()>> {
        // Every range passes the gate on its own (script `at_op`
        // counters keep their wire-op granularity); the survivors go
        // down in one inner vectored call, so a chaos hit on one range
        // never fails the rest of the batch.
        let mut results: Vec<Option<TargetResult<()>>> =
            ranges.iter().map(|_| self.gate().err().map(Err)).collect();
        let mut fwd = Vec::new();
        let mut fwd_idx = Vec::new();
        for (i, r) in ranges.iter_mut().enumerate() {
            if results[i].is_none() {
                fwd_idx.push(i);
                fwd.push(ReadRange::new(r.addr, &mut *r.buf));
            }
        }
        for (i, res) in fwd_idx
            .into_iter()
            .zip(self.inner.get_bytes_multi(&mut fwd))
        {
            results[i] = Some(res);
        }
        results.into_iter().map(Option::unwrap).collect()
    }

    fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
        self.gate()?;
        self.inner.put_bytes(addr, bytes)
    }

    fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64> {
        self.gate()?;
        self.inner.alloc_space(size, align)
    }

    fn call_func(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue> {
        self.gate()?;
        self.inner.call_func(name, args)
    }

    fn get_variable(&mut self, name: &str) -> Option<VarInfo> {
        self.inner.get_variable(name)
    }

    fn get_variable_in_frame(&mut self, name: &str, frame: usize) -> Option<VarInfo> {
        self.inner.get_variable_in_frame(name, frame)
    }

    fn lookup_typedef(&mut self, name: &str) -> Option<TypeId> {
        self.inner.lookup_typedef(name)
    }

    fn lookup_struct(&mut self, tag: &str) -> Option<RecordId> {
        self.inner.lookup_struct(tag)
    }

    fn lookup_union(&mut self, tag: &str) -> Option<RecordId> {
        self.inner.lookup_union(tag)
    }

    fn lookup_enum(&mut self, tag: &str) -> Option<EnumId> {
        self.inner.lookup_enum(tag)
    }

    fn has_function(&mut self, name: &str) -> bool {
        self.inner.has_function(name)
    }

    fn frame_count(&mut self) -> usize {
        self.inner.frame_count()
    }

    fn frame_info(&mut self, n: usize) -> Option<FrameInfo> {
        self.inner.frame_info(n)
    }

    fn is_mapped(&mut self, addr: u64, len: u64) -> bool {
        self.inner.is_mapped(addr, len)
    }

    fn take_output(&mut self) -> String {
        self.inner.take_output()
    }

    fn trace_handle(&self) -> Option<crate::trace::TraceHandle> {
        self.inner.trace_handle()
    }

    fn set_span_context(&mut self, spans: &crate::span::SpanContext) {
        self.inner.set_span_context(spans);
    }

    fn span_context(&self) -> Option<crate::span::SpanContext> {
        self.inner.span_context()
    }

    fn staleness_handle(&self) -> Option<crate::supervise::StalenessHandle> {
        self.inner.staleness_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn live_gate_is_transparent() {
        let mut t = ChaosTarget::new(scenario::scan_array());
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 7);
        assert_eq!(t.handle().injected(), 0);
        assert_eq!(t.handle().ops(), 1);
    }

    #[test]
    fn kill_hang_garble_inject_the_right_errors() {
        let mut t = ChaosTarget::new(scenario::scan_array());
        let h = t.handle();
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        h.kill();
        assert!(matches!(
            t.get_bytes(x.addr, &mut buf),
            Err(TargetError::Backend(m)) if m.contains("killed")
        ));
        h.hang();
        assert!(matches!(
            t.get_bytes(x.addr, &mut buf),
            Err(TargetError::Timeout { .. })
        ));
        h.garble();
        let e1 = t.get_bytes(x.addr, &mut buf).unwrap_err();
        let e2 = t.get_bytes(x.addr, &mut buf).unwrap_err();
        assert!(e1.to_string().contains("garbled reply"), "{e1}");
        assert_ne!(e1, e2, "garbled replies draw fresh noise");
        assert!(e1.is_transient() && e2.is_transient());
        h.revive();
        t.get_bytes(x.addr, &mut buf).unwrap();
        assert_eq!(h.injected(), 4);
    }

    #[test]
    fn heal_after_revives_on_schedule() {
        let mut t = ChaosTarget::new(scenario::scan_array());
        let h = t.handle();
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        h.kill();
        h.heal_after(2);
        assert!(t.get_bytes(x.addr, &mut buf).is_err());
        assert!(t.get_bytes(x.addr, &mut buf).is_err());
        assert!(t.get_bytes(x.addr, &mut buf).is_ok(), "healed after 2 ops");
        assert_eq!(h.mode(), ChaosMode::Live);
    }

    #[test]
    fn scripted_campaign_fires_in_order() {
        let mut t = ChaosTarget::new(scenario::scan_array());
        let h = t.handle();
        h.load_script(vec![
            ChaosEvent {
                at_op: 4,
                action: ChaosAction::Revive,
            },
            ChaosEvent {
                at_op: 2,
                action: ChaosAction::Kill,
            },
        ]);
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        assert!(t.get_bytes(x.addr, &mut buf).is_ok()); // op 1
        assert!(t.get_bytes(x.addr, &mut buf).is_err()); // op 2: kill
        assert!(t.get_bytes(x.addr, &mut buf).is_err()); // op 3
        assert!(t.get_bytes(x.addr, &mut buf).is_ok()); // op 4: revive
    }

    #[test]
    fn campaigns_are_deterministic_in_the_seed() {
        let a = ChaosHandle::new(0).campaign(42, 8, 100);
        let b = ChaosHandle::new(9).campaign(42, 8, 100);
        assert_eq!(a, b, "same seed, same script");
        let c = ChaosHandle::new(0).campaign(43, 8, 100);
        assert_ne!(a, c, "different seed, different script");
        assert!(a.windows(2).all(|w| w[0].at_op <= w[1].at_op));
    }

    #[test]
    fn only_wire_operations_are_gated() {
        let mut t = ChaosTarget::new(scenario::scan_array());
        let h = t.handle();
        h.kill();
        // Symbol/type lookups model debugger-side tables: still fine.
        assert!(t.get_variable("x").is_some());
        assert!(t.frame_count() == 0 || t.frame_info(0).is_some());
        assert_eq!(h.ops(), 0);
    }
}
