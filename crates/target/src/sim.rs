//! An in-process simulated debuggee.
//!
//! [`SimTarget`] implements [`Target`] over a flat byte arena plus
//! symbol/frame tables, giving the evaluator, the mini-C VM and the
//! MI mock server one shared notion of "a process being debugged".
//! The arena is based at [`ARENA_BASE`], so small integers and typical
//! wild-pointer values (`0`, `10`, `0x99`, `0xdead_beef`) are unmapped
//! and fault exactly like they would on a real target.

use crate::error::{TargetError, TargetResult};
use crate::iface::{CallValue, FrameInfo, ReadRange, Target, VarInfo, VarKind};
use crate::value_io;
use duel_ctype::{Abi, Endian, EnumId, Prim, RecordId, TypeId, TypeTable};
use std::collections::HashMap;

/// Lowest mapped address of the simulated arena.
pub const ARENA_BASE: u64 = 0x1000;

/// Hard ceiling on arena growth (stops runaway `malloc` from hostile
/// expressions; well above every canned scenario's footprint).
const ARENA_CAP: u64 = 1 << 28;

/// The flat memory arena of a simulated debuggee.
#[derive(Clone, Debug, Default)]
pub struct SimMemory {
    bytes: Vec<u8>,
}

impl SimMemory {
    /// Lowest mapped address.
    pub fn base(&self) -> u64 {
        ARENA_BASE
    }

    /// Whether `[addr, addr+len)` lies inside the mapped arena.
    pub fn contains(&self, addr: u64, len: u64) -> bool {
        let end = ARENA_BASE + self.bytes.len() as u64;
        addr >= ARENA_BASE
            && addr
                .checked_add(len)
                .map(|stop| stop <= end)
                .unwrap_or(false)
            && addr <= end
    }

    /// Reads `buf.len()` bytes at `addr`.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        let len = buf.len() as u64;
        if !self.contains(addr, len) {
            return Err(TargetError::IllegalMemory { addr, len });
        }
        let off = (addr - ARENA_BASE) as usize;
        buf.copy_from_slice(&self.bytes[off..off + buf.len()]);
        Ok(())
    }

    /// Writes `bytes` at `addr`.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
        let len = bytes.len() as u64;
        if !self.contains(addr, len) {
            return Err(TargetError::IllegalMemory { addr, len });
        }
        let off = (addr - ARENA_BASE) as usize;
        self.bytes[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads a NUL-terminated string of at most `max` bytes at `addr`
    /// (stopping early at the end of mapped memory).
    pub fn read_cstring(&self, addr: u64, max: usize) -> TargetResult<String> {
        if !self.contains(addr, 1) {
            return Err(TargetError::IllegalMemory { addr, len: 1 });
        }
        let mut out = Vec::new();
        for i in 0..max as u64 {
            // checked: a string straddling the top of the address space
            // must stop at the edge, not overflow.
            let Some(a) = addr.checked_add(i) else { break };
            if !self.contains(a, 1) {
                break;
            }
            let b = self.bytes[(a - ARENA_BASE) as usize];
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }
}

#[derive(Clone, Debug)]
struct SimFrame {
    function: String,
    line: Option<u32>,
    locals: Vec<(String, u64, TypeId)>,
}

/// The state of a simulated debuggee: memory, symbols, types, frames
/// and buffered `printf` output.
#[derive(Clone, Debug)]
pub struct SimCore {
    /// The ABI the debuggee was "compiled" for.
    pub abi: Abi,
    /// The debuggee's type information.
    pub types: TypeTable,
    /// Its memory.
    pub mem: SimMemory,
    globals: HashMap<String, (u64, TypeId)>,
    /// Stack frames; the *last* entry is the innermost frame.
    frames: Vec<SimFrame>,
    output: String,
}

impl SimCore {
    /// An empty debuggee with the given ABI.
    pub fn new(abi: Abi) -> SimCore {
        SimCore {
            abi,
            types: TypeTable::new(),
            mem: SimMemory::default(),
            globals: HashMap::new(),
            frames: Vec::new(),
            output: String::new(),
        }
    }

    /// Bump-allocates `size` bytes with the given alignment.
    pub fn alloc(&mut self, size: u64, align: u64) -> TargetResult<u64> {
        let align = align.max(1);
        let end = ARENA_BASE + self.mem.bytes.len() as u64;
        // checked: a hostile alignment (e.g. u64::MAX from a debuggee
        // call) must fault, not overflow the rounding multiply.
        let addr = end
            .div_ceil(align)
            .checked_mul(align)
            .ok_or_else(|| TargetError::Backend("allocation alignment overflows".to_string()))?;
        let new_end = addr.checked_add(size).ok_or(TargetError::Backend(
            "allocation overflows the address space".to_string(),
        ))?;
        if new_end - ARENA_BASE > ARENA_CAP {
            return Err(TargetError::Backend(format!(
                "simulator arena exhausted: cannot allocate {size} byte(s)"
            )));
        }
        self.mem.bytes.resize((new_end - ARENA_BASE) as usize, 0);
        Ok(addr)
    }

    /// Defines a zero-initialized global of type `ty`, returning its
    /// address.
    pub fn define_global(&mut self, name: &str, ty: TypeId) -> TargetResult<u64> {
        let (size, align) = self
            .types
            .size_align(ty, &self.abi)
            .map_err(|e| TargetError::Backend(e.to_string()))?;
        let addr = self.alloc(size.max(1), align)?;
        self.globals.insert(name.to_string(), (addr, ty));
        Ok(addr)
    }

    /// Defines a global as a raw `size`-byte buffer (typed `char[size]`),
    /// returning its address. Fails with a [`TargetError`] if the arena
    /// cap is hit (a hostile size must fault, not panic).
    pub fn define_global_bytes(&mut self, name: &str, size: u64) -> TargetResult<u64> {
        let ch = self.types.prim(Prim::Char);
        let ty = self.types.array(ch, Some(size));
        let addr = self.alloc(size.max(1), 16)?;
        self.globals.insert(name.to_string(), (addr, ty));
        Ok(addr)
    }

    /// Defines a zero-initialized local in the innermost frame.
    pub fn define_local(&mut self, name: &str, ty: TypeId) -> TargetResult<u64> {
        let (size, align) = self
            .types
            .size_align(ty, &self.abi)
            .map_err(|e| TargetError::Backend(e.to_string()))?;
        let addr = self.alloc(size.max(1), align)?;
        let frame = self
            .frames
            .last_mut()
            .ok_or_else(|| TargetError::Backend("no active frame for local".to_string()))?;
        frame.locals.push((name.to_string(), addr, ty));
        Ok(addr)
    }

    /// Pushes a new innermost stack frame.
    pub fn push_frame(&mut self, function: &str) {
        self.frames.push(SimFrame {
            function: function.to_string(),
            line: None,
            locals: Vec::new(),
        });
    }

    /// Pops the innermost stack frame (its locals go out of scope; the
    /// storage is not reclaimed — this is a bump arena).
    pub fn pop_frame(&mut self) {
        self.frames.pop();
    }

    /// Records the current source line of the innermost frame.
    pub fn set_line(&mut self, line: u32) {
        if let Some(f) = self.frames.last_mut() {
            f.line = Some(line);
        }
    }

    /// Debuggee-side `malloc`.
    pub fn malloc(&mut self, size: u64) -> TargetResult<u64> {
        self.alloc(size.max(1), 16)
    }

    /// Copies `s` into the arena as a NUL-terminated string and returns
    /// its address.
    pub fn intern_cstring(&mut self, s: &str) -> TargetResult<u64> {
        let bytes = s.as_bytes();
        let addr = self.alloc(bytes.len() as u64 + 1, 1)?;
        self.mem.write(addr, bytes)?;
        self.mem.write(addr + bytes.len() as u64, &[0])?;
        Ok(addr)
    }

    fn encode(&self, v: u64, size: usize) -> Vec<u8> {
        let size = size.min(8);
        match self.abi.endian {
            Endian::Little => v.to_le_bytes()[..size].to_vec(),
            Endian::Big => v.to_be_bytes()[8 - size..].to_vec(),
        }
    }

    fn decode(&self, bytes: &[u8]) -> u64 {
        let mut raw = 0u64;
        match self.abi.endian {
            Endian::Little => {
                for (i, b) in bytes.iter().take(8).enumerate() {
                    raw |= (*b as u64) << (8 * i);
                }
            }
            Endian::Big => {
                for b in bytes.iter().take(8) {
                    raw = (raw << 8) | *b as u64;
                }
            }
        }
        raw
    }

    /// Writes a `size`-byte unsigned integer at `addr`.
    pub fn write_uint(&mut self, addr: u64, v: u64, size: usize) -> TargetResult<()> {
        let bytes = self.encode(v, size);
        self.mem.write(addr, &bytes)
    }

    /// Reads a `size`-byte unsigned integer at `addr`.
    pub fn read_uint(&self, addr: u64, size: usize) -> TargetResult<u64> {
        let mut buf = vec![0u8; size.min(8)];
        self.mem.read(addr, &mut buf)?;
        Ok(self.decode(&buf))
    }

    /// Writes a 4-byte `int` at `addr`.
    pub fn write_int(&mut self, addr: u64, v: i32) -> TargetResult<()> {
        self.write_uint(addr, v as u32 as u64, 4)
    }

    /// Reads a 4-byte `int` at `addr`.
    pub fn read_int(&self, addr: u64) -> TargetResult<i32> {
        Ok(self.read_uint(addr, 4)? as u32 as i32)
    }

    /// Writes a pointer (ABI width) at `addr`.
    pub fn write_ptr(&mut self, addr: u64, v: u64) -> TargetResult<()> {
        let size = self.abi.pointer_bytes as usize;
        self.write_uint(addr, v, size)
    }

    /// Reads a pointer (ABI width) at `addr`.
    pub fn read_ptr(&self, addr: u64) -> TargetResult<u64> {
        self.read_uint(addr, self.abi.pointer_bytes as usize)
    }

    /// Address and type of a global, if defined.
    pub fn global_addr(&self, name: &str) -> Option<(u64, TypeId)> {
        self.globals.get(name).copied()
    }

    fn resolve(&self, name: &str) -> Option<VarInfo> {
        if let Some(frame) = self.frames.last() {
            if let Some((n, addr, ty)) = frame.locals.iter().rev().find(|(n, _, _)| n == name) {
                return Some(VarInfo {
                    name: n.clone(),
                    addr: *addr,
                    ty: *ty,
                    kind: VarKind::Local { frame: 0 },
                });
            }
        }
        self.globals.get(name).map(|(addr, ty)| VarInfo {
            name: name.to_string(),
            addr: *addr,
            ty: *ty,
            kind: VarKind::Global,
        })
    }

    fn resolve_in_frame(&self, name: &str, frame: usize) -> Option<VarInfo> {
        let idx = self.frames.len().checked_sub(1 + frame)?;
        let f = self.frames.get(idx)?;
        f.locals
            .iter()
            .rev()
            .find(|(n, _, _)| n == name)
            .map(|(n, addr, ty)| VarInfo {
                name: n.clone(),
                addr: *addr,
                ty: *ty,
                kind: VarKind::Local { frame },
            })
    }

    fn arg_raw(&self, args: &[CallValue], i: usize) -> u64 {
        args.get(i).map(|a| a.to_u64(&self.abi)).unwrap_or(0)
    }

    fn arg_int(&self, args: &[CallValue], i: usize) -> i64 {
        args.get(i)
            .map(|a| value_io::sign_extend(a.to_u64(&self.abi), a.bytes.len()))
            .unwrap_or(0)
    }

    fn format_printf(&self, fmt: &str, args: &[CallValue]) -> TargetResult<String> {
        let mut out = String::new();
        let mut ai = 1; // args[0] is the format string
        let mut chars = fmt.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '%' {
                out.push(c);
                continue;
            }
            if chars.peek() == Some(&'%') {
                chars.next();
                out.push('%');
                continue;
            }
            let mut left = false;
            if chars.peek() == Some(&'-') {
                left = true;
                chars.next();
            }
            let mut width = 0usize;
            while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                width = width * 10 + d as usize;
                chars.next();
            }
            let Some(conv) = chars.next() else {
                out.push('%');
                break;
            };
            let rendered = match conv {
                'd' | 'i' => self.arg_int(args, ai).to_string(),
                'u' => self.arg_raw(args, ai).to_string(),
                'x' => format!("{:x}", self.arg_raw(args, ai)),
                'c' => ((self.arg_raw(args, ai) as u8) as char).to_string(),
                's' => self.mem.read_cstring(self.arg_raw(args, ai), 4096)?,
                other => {
                    // Unknown conversion: emit it literally, consume no
                    // argument.
                    out.push('%');
                    if left {
                        out.push('-');
                    }
                    out.push(other);
                    continue;
                }
            };
            ai += 1;
            if rendered.len() >= width {
                out.push_str(&rendered);
            } else if left {
                out.push_str(&rendered);
                for _ in rendered.len()..width {
                    out.push(' ');
                }
            } else {
                for _ in rendered.len()..width {
                    out.push(' ');
                }
                out.push_str(&rendered);
            }
        }
        Ok(out)
    }

    fn call_native(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue> {
        match name {
            "printf" => {
                if args.is_empty() {
                    return Err(TargetError::CallFailed {
                        func: "printf".to_string(),
                        reason: "missing format string argument".to_string(),
                    });
                }
                let fmt = self.mem.read_cstring(self.arg_raw(args, 0), 4096)?;
                let text = self.format_printf(&fmt, args)?;
                let n = text.chars().count() as i64;
                self.output.push_str(&text);
                let int = self.types.prim(Prim::Int);
                CallValue::from_u64(int, n as u64, 4, &self.abi)
            }
            "malloc" => {
                let size = self.arg_raw(args, 0);
                let addr = self.malloc(size)?;
                let void = self.types.void();
                let pv = self.types.pointer(void);
                let psize = self.abi.pointer_bytes as usize;
                CallValue::from_u64(pv, addr, psize, &self.abi)
            }
            "strlen" => {
                let s = self.mem.read_cstring(self.arg_raw(args, 0), 1 << 20)?;
                let int = self.types.prim(Prim::Int);
                CallValue::from_u64(int, s.len() as u64, 4, &self.abi)
            }
            "abs" => {
                let v = self.arg_int(args, 0);
                let int = self.types.prim(Prim::Int);
                CallValue::from_u64(int, v.unsigned_abs() & 0xffff_ffff, 4, &self.abi)
            }
            _ => Err(TargetError::UnknownFunction(name.to_string())),
        }
    }

    fn has_native(&self, name: &str) -> bool {
        matches!(name, "printf" | "malloc" | "strlen" | "abs")
    }
}

/// A simulated debuggee exposed through the [`Target`] trait.
#[derive(Clone, Debug)]
pub struct SimTarget {
    /// The simulated process; helpers build scenarios through it.
    pub core: SimCore,
}

impl SimTarget {
    /// An empty simulated debuggee with the given ABI.
    pub fn new(abi: Abi) -> SimTarget {
        SimTarget {
            core: SimCore::new(abi),
        }
    }
}

impl Target for SimTarget {
    fn abi(&self) -> &Abi {
        &self.core.abi
    }

    fn types(&self) -> &TypeTable {
        &self.core.types
    }

    fn types_mut(&mut self) -> &mut TypeTable {
        &mut self.core.types
    }

    fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        self.core.mem.read(addr, buf)
    }

    fn get_bytes_multi(&mut self, ranges: &mut [ReadRange<'_>]) -> Vec<TargetResult<()>> {
        // Native vectored read: one pass over the arena, no per-range
        // call overhead — a simulated single wire turn.
        ranges
            .iter_mut()
            .map(|r| self.core.mem.read(r.addr, r.buf))
            .collect()
    }

    fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
        self.core.mem.write(addr, bytes)
    }

    fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64> {
        self.core.alloc(size, align)
    }

    fn call_func(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue> {
        self.core.call_native(name, args)
    }

    fn get_variable(&mut self, name: &str) -> Option<VarInfo> {
        self.core.resolve(name)
    }

    fn get_variable_in_frame(&mut self, name: &str, frame: usize) -> Option<VarInfo> {
        self.core.resolve_in_frame(name, frame)
    }

    fn lookup_typedef(&mut self, name: &str) -> Option<TypeId> {
        self.core.types.typedef(name)
    }

    fn lookup_struct(&mut self, tag: &str) -> Option<RecordId> {
        self.core.types.struct_tag(tag)
    }

    fn lookup_union(&mut self, tag: &str) -> Option<RecordId> {
        self.core.types.union_tag(tag)
    }

    fn lookup_enum(&mut self, tag: &str) -> Option<EnumId> {
        self.core.types.enum_tag(tag)
    }

    fn has_function(&mut self, name: &str) -> bool {
        self.core.has_native(name)
    }

    fn frame_count(&mut self) -> usize {
        self.core.frames.len()
    }

    fn frame_info(&mut self, n: usize) -> Option<FrameInfo> {
        let idx = self.core.frames.len().checked_sub(1 + n)?;
        self.core.frames.get(idx).map(|f| FrameInfo {
            function: f.function.clone(),
            line: f.line,
        })
    }

    fn is_mapped(&mut self, addr: u64, len: u64) -> bool {
        self.core.mem.contains(addr, len)
    }

    fn take_output(&mut self) -> String {
        std::mem::take(&mut self.core.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_addresses_are_unmapped() {
        let mut t = SimTarget::new(Abi::lp64());
        for addr in [0u64, 10, 0x99, 0x999999, 0xdead_beef, 0xdead_beef_0000] {
            assert!(!t.is_mapped(addr, 1), "0x{addr:x} should be unmapped");
        }
        let mut buf = [0u8; 4];
        assert_eq!(
            t.get_bytes(10, &mut buf),
            Err(TargetError::IllegalMemory { addr: 10, len: 4 })
        );
    }

    #[test]
    fn globals_roundtrip() {
        let mut t = SimTarget::new(Abi::lp64());
        let int = t.core.types.prim(Prim::Int);
        let a = t.core.define_global("a", int).unwrap();
        t.core.write_int(a, -42).unwrap();
        assert_eq!(t.core.read_int(a).unwrap(), -42);
        let v = t.get_variable("a").unwrap();
        assert_eq!(v.addr, a);
        assert_eq!(v.kind, VarKind::Global);
    }

    #[test]
    fn locals_shadow_globals_and_frames_order() {
        let mut t = SimTarget::new(Abi::lp64());
        let int = t.core.types.prim(Prim::Int);
        t.core.define_global("v", int).unwrap();
        t.core.push_frame("main");
        t.core.push_frame("helper");
        let local = t.core.define_local("v", int).unwrap();
        assert_eq!(t.frame_count(), 2);
        assert_eq!(t.frame_info(0).unwrap().function, "helper");
        assert_eq!(t.frame_info(1).unwrap().function, "main");
        let v = t.get_variable("v").unwrap();
        assert_eq!(v.addr, local);
        assert_eq!(v.kind, VarKind::Local { frame: 0 });
        t.core.pop_frame();
        assert_eq!(t.get_variable("v").unwrap().kind, VarKind::Global);
    }

    #[test]
    fn printf_formats_and_counts() {
        let mut t = SimTarget::new(Abi::lp64());
        let fmt = t.core.intern_cstring("v=%d\n").unwrap();
        let int = t.core.types.prim(Prim::Int);
        let args = [
            CallValue::from_u64(int, fmt, 8, &Abi::lp64()).unwrap(),
            CallValue::from_u64(int, 7, 4, &Abi::lp64()).unwrap(),
        ];
        let r = t.call_func("printf", &args).unwrap();
        assert_eq!(r.to_u64(&Abi::lp64()), 4);
        assert_eq!(t.take_output(), "v=7\n");
        assert_eq!(t.take_output(), "");
    }

    #[test]
    fn printf_width_and_string() {
        let mut t = SimTarget::new(Abi::lp64());
        let abi = Abi::lp64();
        let fmt = t.core.intern_cstring("%d|%u|%x|%c|%s|%5d|%-3d|").unwrap();
        let s = t.core.intern_cstring("str").unwrap();
        let int = t.core.types.prim(Prim::Int);
        let mk = |v: u64, size: usize| CallValue::from_u64(int, v, size, &abi).unwrap();
        let args = [
            mk(fmt, 8),
            mk((-7i32) as u32 as u64, 4),
            mk(7, 4),
            mk(255, 4),
            mk('Z' as u64, 4),
            mk(s, 8),
            mk(42, 4),
            mk(1, 4),
        ];
        t.call_func("printf", &args).unwrap();
        assert_eq!(t.take_output(), "-7|7|ff|Z|str|   42|1  |");
    }

    #[test]
    fn natives() {
        let mut t = SimTarget::new(Abi::lp64());
        let abi = Abi::lp64();
        let int = t.core.types.prim(Prim::Int);
        // malloc returns fresh mapped space.
        let r = t
            .call_func("malloc", &[CallValue::from_u64(int, 16, 8, &abi).unwrap()])
            .unwrap();
        assert!(t.is_mapped(r.to_u64(&abi), 16));
        // strlen
        let s = t.core.intern_cstring("four").unwrap();
        let r = t
            .call_func("strlen", &[CallValue::from_u64(int, s, 8, &abi).unwrap()])
            .unwrap();
        assert_eq!(r.to_u64(&abi), 4);
        // abs
        let r = t
            .call_func(
                "abs",
                &[CallValue::from_u64(int, (-9i32) as u32 as u64, 4, &abi).unwrap()],
            )
            .unwrap();
        assert_eq!(r.to_u64(&abi), 9);
        // unknown
        assert_eq!(
            t.call_func("nope", &[]),
            Err(TargetError::UnknownFunction("nope".to_string()))
        );
        assert!(t.has_function("printf"));
        assert!(!t.has_function("nope"));
    }

    #[test]
    fn hostile_sizes_and_alignments_fault_instead_of_panicking() {
        let mut t = SimTarget::new(Abi::lp64());
        // Alignment rounding must not overflow.
        assert!(t.core.alloc(8, u64::MAX).is_err());
        // Oversized allocations hit the cap or the address space.
        assert!(t.core.alloc(u64::MAX, 16).is_err());
        assert!(t.core.define_global_bytes("big", u64::MAX).is_err());
        assert!(t.core.malloc(u64::MAX).is_err());
        // Strings at the top of the address space stop cleanly.
        assert!(t.core.mem.read_cstring(u64::MAX, 16).is_err());
        // The debuggee still works afterwards.
        let a = t.core.define_global_bytes("ok", 8).unwrap();
        t.core.write_int(a, 5).unwrap();
        assert_eq!(t.core.read_int(a).unwrap(), 5);
    }

    #[test]
    fn cstring_stops_at_arena_edge() {
        let mut t = SimTarget::new(Abi::lp64());
        let a = t.core.intern_cstring("hi").unwrap();
        assert_eq!(t.core.mem.read_cstring(a, 64).unwrap(), "hi");
        assert!(t.core.mem.read_cstring(0x10, 4).is_err());
    }

    #[test]
    fn big_endian_encode() {
        let mut t = SimTarget::new(Abi::ilp32_be());
        let int = t.core.types.prim(Prim::Int);
        let a = t.core.define_global("x", int).unwrap();
        t.core.write_int(a, 1).unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(a, &mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0, 1]);
        assert_eq!(t.core.read_int(a).unwrap(), 1);
    }
}
