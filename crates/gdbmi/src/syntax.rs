//! The gdb/MI output grammar (gdb manual, "GDB/MI Output Syntax").
//!
//! ```text
//! output       → ( out-of-band-record )* [ result-record ] "(gdb)" nl
//! result-record→ [ token ] "^" result-class ( "," result )*
//! async-record → exec-async-output | status-async-output | notify-…
//! stream-record→ "~" c-string | "@" c-string | "&" c-string
//! result       → variable "=" value
//! value        → const | tuple | list
//! tuple        → "{}" | "{" result ( "," result )* "}"
//! list         → "[]" | "[" value ( "," value )* "]"
//!              | "[" result ( "," result )* "]"
//! ```

use std::collections::BTreeMap;

/// A parsed MI value.
#[derive(Clone, Debug, PartialEq)]
pub enum MiValue {
    /// A c-string constant.
    Const(String),
    /// A `{name=value, …}` tuple.
    Tuple(BTreeMap<String, MiValue>),
    /// A `[…]` list (of values; `name=value` items keep their names in
    /// the paired variant).
    List(Vec<MiValue>),
    /// A list of named results (`[frame={…},frame={…}]`).
    ResultList(Vec<(String, MiValue)>),
}

impl MiValue {
    /// Fetches a tuple field.
    pub fn get(&self, name: &str) -> Option<&MiValue> {
        match self {
            MiValue::Tuple(m) => m.get(name),
            _ => None,
        }
    }

    /// The string payload of a `Const`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            MiValue::Const(s) => Some(s),
            _ => None,
        }
    }

    /// Fetches a tuple field as a string.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(|v| v.as_str())
    }

    /// The elements of a list.
    pub fn items(&self) -> &[MiValue] {
        match self {
            MiValue::List(v) => v,
            _ => &[],
        }
    }
}

/// The class of a result record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResultClass {
    /// `^done`.
    Done,
    /// `^running`.
    Running,
    /// `^connected`.
    Connected,
    /// `^error`.
    Error,
    /// `^exit`.
    Exit,
}

/// One line of MI output.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// `token^class,results…`.
    Result {
        /// The command-correlation token, if present.
        token: Option<u64>,
        /// The result class.
        class: ResultClass,
        /// Named results.
        results: BTreeMap<String, MiValue>,
    },
    /// `*stopped,…` / `=thread-created,…` / `+download,…`.
    Async {
        /// `*`, `=`, or `+`.
        kind: char,
        /// The async class (e.g. `stopped`).
        class: String,
        /// Named results.
        results: BTreeMap<String, MiValue>,
    },
    /// `~"…"` (console), `@"…"` (target), `&"…"` (log).
    Stream {
        /// `~`, `@`, or `&`.
        kind: char,
        /// The decoded text.
        text: String,
    },
    /// The `(gdb)` prompt terminating an output block.
    Prompt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let mut m = BTreeMap::new();
        m.insert("addr".to_string(), MiValue::Const("0x10".into()));
        let t = MiValue::Tuple(m);
        assert_eq!(t.get_str("addr"), Some("0x10"));
        assert_eq!(t.get_str("missing"), None);
        let l = MiValue::List(vec![MiValue::Const("1".into())]);
        assert_eq!(l.items().len(), 1);
        assert_eq!(t.items().len(), 0);
    }
}
