//! [`MiTarget`] — the paper's narrow debugger interface over gdb/MI.
//!
//! This is the reproduction's analogue of the paper's 400-line gdb
//! interface module, with the same duties: "converting between gdb and
//! Duel types" (here: parsing C type strings back into a local
//! [`TypeTable`], fetching struct/union/enum definitions lazily),
//! "symbol-table functions", and "accessing the target's address
//! space" (`-data-read-memory-bytes` / `-data-write-memory-bytes`).

use std::collections::{BTreeSet, HashSet};

use duel_ctype::{Abi, Endian, EnumId, Prim, RecordId, TypeId, TypeTable};
use duel_target::{
    CallValue, FrameInfo, ReadRange, ResyncReport, Target, TargetError, TargetResult, VarInfo,
    VarKind,
};

use crate::{client::MiClient, command, MiError, MiTransport};

/// A [`Target`] that speaks gdb/MI to a debugger.
pub struct MiTarget<T: MiTransport> {
    client: MiClient<T>,
    types: TypeTable,
    abi: Abi,
    fetched_records: HashSet<String>,
    fetched_enums: HashSet<String>,
    /// Every symbol name successfully resolved this session — the
    /// working set [`MiTarget::reattach`] re-resolves after a backend
    /// respawn.
    resolved: BTreeSet<String>,
}

pub(crate) fn to_target_err(e: MiError) -> TargetError {
    match e {
        MiError::ErrorRecord(m) if m.contains("illegal memory") => {
            // Surface address-space faults in their native form so DUEL
            // error messages stay uniform across backends.
            parse_illegal(&m)
        }
        other => TargetError::Backend(other.to_string()),
    }
}

fn parse_illegal(m: &str) -> TargetError {
    // The simulator formats faults as "illegal memory reference:
    // N byte(s) at 0xADDR", but a real gdb has its own wording.
    // Reconstruct the structured fault only when an address actually
    // parses; otherwise pass the message through unmangled rather than
    // inventing address 0.
    let addr = m.rfind("0x").and_then(|i| {
        let hex = &m[i + 2..];
        let end = hex
            .find(|c: char| !c.is_ascii_hexdigit())
            .unwrap_or(hex.len());
        u64::from_str_radix(&hex[..end], 16).ok()
    });
    let len = m
        .split(':')
        .nth(1)
        .and_then(|t| t.trim().split(' ').next())
        .and_then(|n| n.parse().ok());
    match addr {
        Some(addr) => TargetError::IllegalMemory {
            addr,
            len: len.unwrap_or(1),
        },
        None => TargetError::Backend(m.to_string()),
    }
}

impl<T: MiTransport> MiTarget<T> {
    /// Connects over a transport, querying the target ABI.
    pub fn connect(transport: T) -> TargetResult<MiTarget<T>> {
        let mut client = MiClient::new(transport);
        let r = client.execute(&command::abi()).map_err(to_target_err)?;
        let abi = parse_abi(&r)?;
        Ok(MiTarget {
            client,
            types: TypeTable::new(),
            abi,
            fetched_records: HashSet::new(),
            fetched_enums: HashSet::new(),
            resolved: BTreeSet::new(),
        })
    }

    /// Replaces the transport with a freshly spawned one and resyncs
    /// session state: re-runs the ABI handshake (refusing a backend
    /// whose ABI changed — aliases and cached type IDs would be
    /// meaningless), verifies every previously imported record still
    /// has the same shape on the new backend, re-resolves every symbol
    /// the session has seen, and re-counts stack frames.
    ///
    /// The local [`TypeTable`] is *kept*: outstanding `TypeId`s (held
    /// by aliases and generator state above this layer) stay valid, and
    /// the verification pass reports drift via
    /// [`ResyncReport::type_table_ok`] instead of silently importing a
    /// contradictory snapshot.
    pub fn reattach(&mut self, transport: T) -> TargetResult<ResyncReport> {
        let mut client = MiClient::new(transport);
        let r = client.execute(&command::abi()).map_err(to_target_err)?;
        let abi = parse_abi(&r)?;
        if abi != self.abi {
            return Err(TargetError::Backend(
                "ABI changed across reconnect; session state cannot be resynced".into(),
            ));
        }
        self.client = client;
        // Type-table snapshot verification: every record imported
        // before the reconnect must still exist with the same field
        // list on the new backend (a mismatch means the debuggee was
        // rebuilt underneath us).
        let mut type_table_ok = true;
        let mut mismatch = String::new();
        let keys: Vec<String> = self.fetched_records.iter().cloned().collect();
        for key in keys {
            let is_union = key.starts_with("u:");
            let tag = key[2..].to_string();
            let before: Option<Vec<String>> = (if is_union {
                self.types.union_tag(&tag)
            } else {
                self.types.struct_tag(&tag)
            })
            .filter(|rid| self.types.record(*rid).complete)
            .map(|rid| {
                self.types
                    .record(rid)
                    .fields
                    .iter()
                    .map(|f| f.name.clone())
                    .collect()
            });
            let r = self
                .client
                .execute(&command::record_info(&tag, is_union))
                .map_err(to_target_err)?;
            let after: Option<Vec<String>> = if r.get("found").and_then(|v| v.as_str()) == Some("1")
            {
                r.get("fields").map(|fv| {
                    fv.items()
                        .iter()
                        .filter_map(|f| f.get_str("name").map(|s| s.to_string()))
                        .collect()
                })
            } else {
                None
            };
            if before != after {
                type_table_ok = false;
                mismatch = format!(
                    "record `{tag}` {} across reconnect",
                    if after.is_none() {
                        "lost"
                    } else {
                        "changed shape"
                    }
                );
            }
        }
        // Re-resolve the session's symbol working set against the new
        // backend (which also refreshes their addresses in the MI log).
        let names: Vec<String> = self.resolved.iter().cloned().collect();
        let mut symbols = 0;
        for n in &names {
            if self.get_variable(n).is_some() {
                symbols += 1;
            }
        }
        let frames = self.frame_count();
        Ok(ResyncReport {
            symbols,
            frames,
            type_table_ok,
            detail: if type_table_ok {
                "respawned MI process".to_string()
            } else {
                mismatch
            },
        })
    }

    /// The underlying client (e.g. to inspect the command log of a
    /// mock).
    pub fn client_mut(&mut self) -> &mut MiClient<T> {
        &mut self.client
    }

    /// Connects like [`MiTarget::connect`], wrapping the adapter in a
    /// [`duel_target::RetryTarget`]: transient transport failures
    /// (dropped lines, timeouts) during memory and call operations are
    /// retried with bounded exponential backoff, while faults (bad
    /// addresses, unknown symbols) pass through untouched.
    pub fn connect_with_retry(
        transport: T,
        policy: duel_target::RetryPolicy,
    ) -> TargetResult<duel_target::RetryTarget<MiTarget<T>>> {
        Ok(duel_target::RetryTarget::with_policy(
            MiTarget::connect(transport)?,
            policy,
        ))
    }

    /// The full production decorator stack for an MI connection:
    /// `RetryTarget<CachedTarget<MiTarget>>`. The cache sits *inside*
    /// retry so a retried operation re-enters the cache (and a
    /// transient failure can never strand half-fetched pages), while
    /// every cache miss that does reach the wire is still retried.
    /// Call [`duel_target::CachedTarget::invalidate_all`] on the cache
    /// layer whenever the debuggee resumes.
    pub fn connect_cached(
        transport: T,
        policy: duel_target::RetryPolicy,
        cache: duel_target::CacheConfig,
    ) -> TargetResult<duel_target::RetryTarget<duel_target::CachedTarget<MiTarget<T>>>> {
        Ok(duel_target::RetryTarget::with_policy(
            duel_target::CachedTarget::with_config(MiTarget::connect(transport)?, cache),
            policy,
        ))
    }

    /// [`MiTarget::connect_cached`] with a flight recorder at the
    /// *innermost* position:
    /// `RetryTarget<CachedTarget<RecordTarget<MiTarget>>>`.
    ///
    /// The recorder sits below the cache so the capture holds exactly
    /// the traffic that reached the MI wire — cache hits never hollow
    /// out the capture, and replaying it through an identically
    /// configured (cold) tower reproduces the same miss sequence. It
    /// also sits below retry, so every individual attempt (including
    /// the transient failures retry absorbs) is recorded; a strict
    /// [`duel_target::ReplayTarget`] re-serves those transients and the
    /// retry layer above re-drives them deterministically.
    ///
    /// This differs from the MI-transport-level `Recorder`/`Replayer`
    /// in [`crate::replay`]: that pair captures raw MI text lines
    /// (one debugger dialect), while this captures the typed `Target`
    /// interface, so the same file replays under any consumer of the
    /// trait. See DESIGN.md §11 for the reconciliation.
    #[allow(clippy::type_complexity)]
    pub fn connect_recorded(
        transport: T,
        policy: duel_target::RetryPolicy,
        cache: duel_target::CacheConfig,
        sink: Box<dyn std::io::Write + Send>,
        scenario: &str,
    ) -> TargetResult<
        duel_target::RetryTarget<duel_target::CachedTarget<duel_target::RecordTarget<MiTarget<T>>>>,
    > {
        let mut rec = duel_target::RecordTarget::new(MiTarget::connect(transport)?);
        rec.start(sink, "gdb-mi", scenario)
            .map_err(|e| duel_target::TargetError::Backend(format!("capture sink: {e}")))?;
        Ok(duel_target::RetryTarget::with_policy(
            duel_target::CachedTarget::with_config(rec, cache),
            policy,
        ))
    }

    /// [`MiTarget::connect_cached`] with a [`duel_target::TraceTarget`]
    /// at *both* ends of the tower:
    /// `TraceTarget<RetryTarget<CachedTarget<TraceTarget<MiTarget>>>>`.
    ///
    /// The outer `"session"` layer counts what the evaluator asks for;
    /// the inner `"wire"` layer counts what actually crosses the MI
    /// transport — so cache hits are the difference between the two
    /// read counters, and every individual retry attempt shows up as
    /// its own wire event. `Target::trace_handle` resolves to the
    /// session layer (the outermost decorator answers first); reach the
    /// wire handle with `.inner().inner().inner().handle()`.
    #[allow(clippy::type_complexity)]
    pub fn connect_traced(
        transport: T,
        policy: duel_target::RetryPolicy,
        cache: duel_target::CacheConfig,
    ) -> TargetResult<
        duel_target::TraceTarget<
            duel_target::RetryTarget<
                duel_target::CachedTarget<duel_target::TraceTarget<MiTarget<T>>>,
            >,
        >,
    > {
        Ok(duel_target::TraceTarget::with_label(
            duel_target::RetryTarget::with_policy(
                duel_target::CachedTarget::with_config(
                    duel_target::TraceTarget::with_label(MiTarget::connect(transport)?, "wire"),
                    cache,
                ),
                policy,
            ),
            "session",
        ))
    }

    // ----- type-string parsing -------------------------------------------

    /// Parses a C type string as rendered by `ptype`-style output
    /// (`"struct symbol *[1024]"`), importing record/enum definitions
    /// on demand.
    pub fn parse_type(&mut self, s: &str) -> TargetResult<TypeId> {
        let s = s.trim();
        // Split off trailing array dimensions.
        let mut dims: Vec<Option<u64>> = Vec::new();
        let mut head = s;
        while let Some(open) = head.rfind('[') {
            let close = head[open..]
                .find(']')
                .map(|c| open + c)
                .ok_or_else(|| bad_type(s))?;
            if close != head.trim_end().len() - 1 {
                break;
            }
            let inner = head[open + 1..close].trim();
            let dim = if inner.is_empty() {
                None
            } else {
                Some(inner.parse().map_err(|_| bad_type(s))?)
            };
            dims.insert(0, dim);
            head = head[..open].trim_end();
        }
        // Split off pointer stars.
        let mut stars = 0;
        let mut base = head.trim_end();
        while let Some(stripped) = base.strip_suffix('*') {
            stars += 1;
            base = stripped.trim_end();
        }
        let mut ty = self.parse_base(base)?;
        for _ in 0..stars {
            ty = self.types.pointer(ty);
        }
        // Dimensions apply innermost-first: `int [3][4]` is an array
        // of 3 arrays of 4 ints.
        for d in dims.into_iter().rev() {
            ty = self.types.array(ty, d);
        }
        Ok(ty)
    }

    fn parse_base(&mut self, base: &str) -> TargetResult<TypeId> {
        if let Some(tag) = base.strip_prefix("struct ") {
            return self.ensure_record(tag.trim(), false);
        }
        if let Some(tag) = base.strip_prefix("union ") {
            return self.ensure_record(tag.trim(), true);
        }
        if let Some(tag) = base.strip_prefix("enum ") {
            let eid = self
                .ensure_enum(tag.trim())?
                .ok_or_else(|| bad_type(base))?;
            let def = self.types.enum_def(eid).clone();
            return Ok(self.types.define_enum(Some(tag.trim()), def.enumerators).1);
        }
        let prim = match base {
            "void" => return Ok(self.types.void()),
            "char" => Prim::Char,
            "signed char" => Prim::SChar,
            "unsigned char" => Prim::UChar,
            "short" => Prim::Short,
            "unsigned short" => Prim::UShort,
            "int" => Prim::Int,
            "unsigned int" => Prim::UInt,
            "long" => Prim::Long,
            "unsigned long" => Prim::ULong,
            "long long" => Prim::LongLong,
            "unsigned long long" => Prim::ULongLong,
            "float" => Prim::Float,
            "double" => Prim::Double,
            other => {
                // A typedef name.
                if let Some(ty) = self.fetch_typedef(other)? {
                    return Ok(ty);
                }
                return Err(bad_type(other));
            }
        };
        Ok(self.types.prim(prim))
    }

    fn ensure_record(&mut self, tag: &str, is_union: bool) -> TargetResult<TypeId> {
        let (_, ty) = if is_union {
            self.types.declare_union(tag)
        } else {
            self.types.declare_struct(tag)
        };
        let key = format!("{}{tag}", if is_union { "u:" } else { "s:" });
        if self.fetched_records.contains(&key) {
            return Ok(ty);
        }
        self.fetched_records.insert(key);
        let r = self
            .client
            .execute(&command::record_info(tag, is_union))
            .map_err(to_target_err)?;
        if r.get("found").and_then(|v| v.as_str()) != Some("1") {
            // Leave it declared but incomplete.
            return Ok(ty);
        }
        let fields_val = r
            .get("fields")
            .cloned()
            .ok_or(TargetError::Backend("missing fields".into()))?;
        let mut fields = Vec::new();
        for f in fields_val.items() {
            let name = f
                .get_str("name")
                .ok_or(TargetError::Backend("field name".into()))?
                .to_string();
            let tystr = f
                .get_str("type")
                .ok_or(TargetError::Backend("field type".into()))?
                .to_string();
            let fty = self.parse_type(&tystr)?;
            let bits = f
                .get_str("bits")
                .filter(|s| !s.is_empty())
                .and_then(|s| s.parse::<u8>().ok());
            fields.push(match bits {
                Some(w) => duel_ctype::Field::bitfield(&name, fty, w),
                None => duel_ctype::Field::new(&name, fty),
            });
        }
        let rid = if is_union {
            self.types.declare_union(tag).0
        } else {
            self.types.declare_struct(tag).0
        };
        self.types.define_record(rid, fields);
        Ok(ty)
    }

    fn ensure_enum(&mut self, tag: &str) -> TargetResult<Option<EnumId>> {
        if self.fetched_enums.contains(tag) {
            return Ok(self.types.enum_tag(tag));
        }
        self.fetched_enums.insert(tag.to_string());
        let r = self
            .client
            .execute(&command::enum_info(tag))
            .map_err(to_target_err)?;
        if r.get("found").and_then(|v| v.as_str()) != Some("1") {
            return Ok(None);
        }
        let mut enumerators = Vec::new();
        if let Some(list) = r.get("enumerators") {
            for e in list.items() {
                let name = e.get_str("name").unwrap_or_default().to_string();
                let v: i64 = e.get_str("value").and_then(|s| s.parse().ok()).unwrap_or(0);
                enumerators.push((name, v));
            }
        }
        let (eid, _) = self.types.define_enum(Some(tag), enumerators);
        Ok(Some(eid))
    }

    fn fetch_typedef(&mut self, name: &str) -> TargetResult<Option<TypeId>> {
        if let Some(ty) = self.types.typedef(name) {
            return Ok(Some(ty));
        }
        let r = self
            .client
            .execute(&command::typedef_info(name))
            .map_err(to_target_err)?;
        if r.get("found").and_then(|v| v.as_str()) != Some("1") {
            return Ok(None);
        }
        let tystr = r
            .get("type")
            .and_then(|v| v.as_str())
            .ok_or(TargetError::Backend("typedef type".into()))?
            .to_string();
        let ty = self.parse_type(&tystr)?;
        self.types.define_typedef(name, ty);
        Ok(Some(ty))
    }

    fn var_from_results(
        &mut self,
        r: &std::collections::BTreeMap<String, crate::MiValue>,
        name: &str,
        kind: VarKind,
    ) -> TargetResult<Option<VarInfo>> {
        if r.get("found").and_then(|v| v.as_str()) != Some("1") {
            return Ok(None);
        }
        let addr = r
            .get("addr")
            .and_then(|v| v.as_str())
            .and_then(parse_hex)
            .ok_or(TargetError::Backend("symbol addr".into()))?;
        let tystr = r
            .get("type")
            .and_then(|v| v.as_str())
            .ok_or(TargetError::Backend("symbol type".into()))?
            .to_string();
        let ty = self.parse_type(&tystr)?;
        Ok(Some(VarInfo {
            name: name.to_string(),
            addr,
            ty,
            kind,
        }))
    }
}

fn parse_abi(r: &std::collections::BTreeMap<String, crate::MiValue>) -> TargetResult<Abi> {
    let get =
        |k: &str| -> Option<String> { r.get(k).and_then(|v| v.as_str()).map(|s| s.to_string()) };
    let ptr: u64 = get("ptr")
        .and_then(|s| s.parse().ok())
        .ok_or(TargetError::Backend("missing ptr size".into()))?;
    let long: u64 = get("long").and_then(|s| s.parse().ok()).unwrap_or(ptr);
    let endian = match get("endian").as_deref() {
        Some("big") => Endian::Big,
        _ => Endian::Little,
    };
    let char_signed = get("char-signed").as_deref() != Some("0");
    Ok(Abi {
        pointer_bytes: ptr,
        long_bytes: long,
        endian,
        char_signed,
        max_align: if ptr == 8 { 16 } else { 8 },
    })
}

fn bad_type(s: &str) -> TargetError {
    TargetError::Backend(format!("cannot parse type string `{s}`"))
}

fn parse_hex(s: &str) -> Option<u64> {
    let h = s.strip_prefix("0x")?;
    u64::from_str_radix(h, 16).ok()
}

/// Decodes one `-data-read-memory-bytes` result into `buf`.
fn decode_read_reply(
    r: &std::collections::BTreeMap<String, crate::syntax::MiValue>,
    buf: &mut [u8],
) -> TargetResult<()> {
    let mem = r
        .get("memory")
        .ok_or(TargetError::Backend("missing memory".into()))?;
    let first = mem
        .items()
        .first()
        .ok_or(TargetError::Backend("empty memory list".into()))?;
    let hex = first
        .get_str("contents")
        .ok_or(TargetError::Backend("missing contents".into()))?;
    if hex.len() != buf.len() * 2 {
        return Err(TargetError::Backend("short read".into()));
    }
    for (i, chunk) in buf.iter_mut().enumerate() {
        *chunk = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16)
            .map_err(|_| TargetError::Backend("bad hex".into()))?;
    }
    Ok(())
}

impl<T: MiTransport> Target for MiTarget<T> {
    fn abi(&self) -> &Abi {
        &self.abi
    }

    fn types(&self) -> &TypeTable {
        &self.types
    }

    fn types_mut(&mut self) -> &mut TypeTable {
        &mut self.types
    }

    fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        let r = self
            .client
            .execute(&command::read_memory_bytes(addr, buf.len() as u64))
            .map_err(to_target_err)?;
        decode_read_reply(&r, buf)
    }

    fn get_bytes_multi(&mut self, ranges: &mut [ReadRange<'_>]) -> Vec<TargetResult<()>> {
        // One pipelined MI turn: every `-data-read-memory-bytes` goes
        // out before any reply is read, so N ranges cost one wire
        // round-trip instead of N.
        let cmds: Vec<String> = ranges
            .iter()
            .map(|r| command::read_memory_bytes(r.addr, r.buf.len() as u64))
            .collect();
        let replies = match self.client.execute_batch(&cmds) {
            Ok(rs) => rs,
            Err(e) => {
                let e = to_target_err(e);
                return ranges.iter().map(|_| Err(e.clone())).collect();
            }
        };
        ranges
            .iter_mut()
            .zip(replies)
            .map(|(r, reply)| match reply {
                Ok(res) => decode_read_reply(&res, r.buf),
                Err(e) => Err(to_target_err(e)),
            })
            .collect()
    }

    fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
        self.client
            .execute(&command::write_memory_bytes(addr, bytes))
            .map_err(to_target_err)?;
        Ok(())
    }

    fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64> {
        let r = self
            .client
            .execute(&command::alloc(size, align))
            .map_err(to_target_err)?;
        r.get("addr")
            .and_then(|v| v.as_str())
            .and_then(parse_hex)
            .ok_or(TargetError::Backend("alloc addr".into()))
    }

    fn call_func(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue> {
        let mut rendered = Vec::with_capacity(args.len());
        for a in args {
            let raw = a.to_u64(&self.abi);
            let is_float = matches!(
                self.types.kind(a.ty),
                duel_ctype::TypeKind::Prim(p) if p.is_float()
            );
            if is_float {
                let f = if a.bytes.len() == 4 {
                    f32::from_bits(raw as u32) as f64
                } else {
                    f64::from_bits(raw)
                };
                let mut s = format!("{f}");
                if !s.contains('.') && !s.contains('e') {
                    s.push_str(".0");
                }
                rendered.push(s);
            } else {
                let sv = duel_target::value_io::sign_extend(raw, a.bytes.len());
                rendered.push(format!("{sv}"));
            }
        }
        let expr = format!("{name}({})", rendered.join(", "));
        let r = self
            .client
            .execute(&command::evaluate(&expr))
            .map_err(|e| match e {
                MiError::ErrorRecord(m) => TargetError::CallFailed {
                    func: name.to_string(),
                    reason: m,
                },
                other => to_target_err(other),
            })?;
        let v = r
            .get("value")
            .and_then(|v| v.as_str())
            .ok_or(TargetError::Backend("call value".into()))?;
        if let Some(p) = parse_hex(v) {
            let void = self.types.void();
            let pv = self.types.pointer(void);
            return CallValue::from_u64(pv, p, self.abi.pointer_bytes as usize, &self.abi);
        }
        let n: i64 = v
            .parse()
            .map_err(|_| TargetError::Backend(format!("bad call value `{v}`")))?;
        let long = self.types.prim(Prim::LongLong);
        CallValue::from_u64(long, n as u64, 8, &self.abi)
    }

    fn get_variable(&mut self, name: &str) -> Option<VarInfo> {
        let r = self.client.execute(&command::symbol_info(name)).ok()?;
        let v = self
            .var_from_results(&r, name, VarKind::Global)
            .ok()
            .flatten();
        if v.is_some() {
            self.resolved.insert(name.to_string());
        }
        v
    }

    fn get_variable_in_frame(&mut self, name: &str, frame: usize) -> Option<VarInfo> {
        let r = self.client.execute(&command::frame_var(name, frame)).ok()?;
        self.var_from_results(&r, name, VarKind::Local { frame })
            .ok()
            .flatten()
    }

    fn lookup_typedef(&mut self, name: &str) -> Option<TypeId> {
        self.fetch_typedef(name).ok().flatten()
    }

    fn lookup_struct(&mut self, tag: &str) -> Option<RecordId> {
        self.ensure_record(tag, false).ok()?;
        let rid = self.types.struct_tag(tag)?;
        if self.types.record(rid).complete {
            Some(rid)
        } else {
            None
        }
    }

    fn lookup_union(&mut self, tag: &str) -> Option<RecordId> {
        self.ensure_record(tag, true).ok()?;
        let rid = self.types.union_tag(tag)?;
        if self.types.record(rid).complete {
            Some(rid)
        } else {
            None
        }
    }

    fn lookup_enum(&mut self, tag: &str) -> Option<EnumId> {
        self.ensure_enum(tag).ok().flatten()
    }

    fn has_function(&mut self, name: &str) -> bool {
        self.client
            .execute(&command::has_function(name))
            .ok()
            .and_then(|r| r.get("found").and_then(|v| v.as_str()).map(|s| s == "1"))
            .unwrap_or(false)
    }

    fn frame_count(&mut self) -> usize {
        self.client
            .execute(&command::frame_count())
            .ok()
            .and_then(|r| {
                r.get("count")
                    .and_then(|v| v.as_str())
                    .and_then(|s| s.parse().ok())
            })
            .unwrap_or(0)
    }

    fn frame_info(&mut self, n: usize) -> Option<FrameInfo> {
        let r = self.client.execute(&command::frame_info(n)).ok()?;
        let function = r.get("func")?.as_str()?.to_string();
        let line: u32 = r
            .get("line")
            .and_then(|v| v.as_str())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        Some(FrameInfo {
            function,
            line: if line == 0 { None } else { Some(line) },
        })
    }

    fn is_mapped(&mut self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        // Probe the first and last byte; MI has no mapping query, so a
        // read attempt is the portable check (as gdb users do).
        let mut b = [0u8; 1];
        if self.get_bytes(addr, &mut b).is_err() {
            return false;
        }
        if len > 1 && self.get_bytes(addr + len - 1, &mut b).is_err() {
            return false;
        }
        true
    }

    fn take_output(&mut self) -> String {
        self.client.take_target_out()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockGdb;
    use duel_target::scenario;

    fn connect(sim: duel_target::SimTarget) -> MiTarget<MockGdb> {
        MiTarget::connect(MockGdb::new(sim)).unwrap()
    }

    #[test]
    fn abi_is_negotiated() {
        let t = connect(scenario::scan_array());
        assert_eq!(t.abi().pointer_bytes, 8);
        assert_eq!(t.abi().endian, Endian::Little);
    }

    #[test]
    fn memory_roundtrip() {
        let mut t = connect(scenario::scan_array());
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 7);
        t.put_bytes(x.addr + 12, &(-5i32).to_le_bytes()).unwrap();
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), -5);
    }

    #[test]
    fn vectored_read_is_one_pipelined_turn_with_per_range_errors() {
        let mut t = connect(scenario::scan_array());
        let x = t.get_variable("x").unwrap();
        let mut a = [0u8; 4];
        let mut b = [0u8; 4];
        let mut bad = [0u8; 4];
        let mut ranges = [
            ReadRange::new(x.addr + 12, &mut a),
            ReadRange::new(0x10, &mut bad), // outside the arena
            ReadRange::new(x.addr + 72, &mut b),
        ];
        let rs = t.get_bytes_multi(&mut ranges);
        assert_eq!(rs[0], Ok(()));
        assert!(
            matches!(rs[1], Err(TargetError::IllegalMemory { .. })),
            "{rs:?}"
        );
        assert_eq!(rs[2], Ok(()));
        assert_eq!(i32::from_le_bytes(a), 7);
        assert_eq!(i32::from_le_bytes(b), 9);
    }

    #[test]
    fn types_are_imported_lazily() {
        let mut t = connect(scenario::hash_table_basic());
        let hash = t.get_variable("hash").unwrap();
        // The imported type renders identically to the original.
        assert_eq!(t.types().display(hash.ty), "struct symbol *[1024]");
        // The struct definition came across with all three fields.
        let rid = t.lookup_struct("symbol").unwrap();
        let rec = t.types().record(rid);
        assert_eq!(rec.fields.len(), 3);
        assert_eq!(rec.fields[1].name, "scope");
    }

    #[test]
    fn unknown_symbols_are_none() {
        let mut t = connect(scenario::scan_array());
        assert!(t.get_variable("nonesuch").is_none());
        assert!(t.lookup_struct("nope").is_none());
        assert!(t.lookup_enum("nope").is_none());
    }

    #[test]
    fn is_mapped_probes() {
        let mut t = connect(scenario::scan_array());
        let x = t.get_variable("x").unwrap();
        assert!(t.is_mapped(x.addr, 4));
        assert!(!t.is_mapped(0, 1));
        assert!(!t.is_mapped(0xdead_beef_0000, 8));
    }

    // ---- MI error-record → TargetError mapping --------------------------

    #[test]
    fn illegal_memory_messages_roundtrip() {
        // The simulator's fault rendering must survive the trip through
        // an MI `^error` record and come back out structured.
        let e = TargetError::IllegalMemory {
            addr: 0x2f00,
            len: 4,
        };
        assert_eq!(to_target_err(MiError::ErrorRecord(e.to_string())), e);
    }

    #[test]
    fn illegal_memory_without_address_keeps_the_message() {
        // A debugger wording the fault its own way (no hex address)
        // must not be mangled into `addr: 0`.
        let m = "illegal memory reference while accessing inferior";
        assert_eq!(
            to_target_err(MiError::ErrorRecord(m.to_string())),
            TargetError::Backend(m.to_string())
        );
    }

    #[test]
    fn illegal_memory_with_trailing_punctuation() {
        assert_eq!(
            parse_illegal("illegal memory reference: 8 byte(s) at 0xdead."),
            TargetError::IllegalMemory {
                addr: 0xdead,
                len: 8
            }
        );
        // Missing length falls back to one byte.
        assert_eq!(
            parse_illegal("illegal memory reference at 0x10"),
            TargetError::IllegalMemory { addr: 0x10, len: 1 }
        );
    }

    #[test]
    fn other_errors_map_to_backend() {
        assert!(matches!(
            to_target_err(MiError::Disconnected),
            TargetError::Backend(_)
        ));
        assert!(matches!(
            to_target_err(MiError::ErrorRecord("No symbol \"zz\"".into())),
            TargetError::Backend(_)
        ));
    }

    // ---- retry wiring ---------------------------------------------------

    /// A transport that drops the next `fail_next` sends on the floor.
    struct Flaky<T> {
        inner: T,
        fail_next: u32,
    }

    impl<T: MiTransport> MiTransport for Flaky<T> {
        fn send_line(&mut self, line: &str) -> Result<(), MiError> {
            if self.fail_next > 0 {
                self.fail_next -= 1;
                return Err(MiError::Disconnected);
            }
            self.inner.send_line(line)
        }

        fn recv_line(&mut self) -> Result<String, MiError> {
            self.inner.recv_line()
        }
    }

    #[test]
    fn transient_transport_failures_are_retried() {
        let flaky = Flaky {
            inner: MockGdb::new(scenario::scan_array()),
            fail_next: 0,
        };
        let mut t = MiTarget::connect_with_retry(flaky, duel_target::RetryPolicy::fast(3)).unwrap();
        let x = t.get_variable("x").unwrap();
        t.inner_mut().client_mut().transport_mut().fail_next = 2;
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 7);
        assert_eq!(t.retries(), 2);
    }

    #[test]
    fn exhausted_retries_surface_the_transport_error() {
        let flaky = Flaky {
            inner: MockGdb::new(scenario::scan_array()),
            fail_next: 0,
        };
        let mut t = MiTarget::connect_with_retry(flaky, duel_target::RetryPolicy::fast(2)).unwrap();
        t.inner_mut().client_mut().transport_mut().fail_next = 10;
        let mut buf = [0u8; 4];
        let err = t.get_bytes(0x1000, &mut buf).unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert_eq!(t.retries(), 2);
    }

    #[test]
    fn faults_pass_through_retry_unchanged() {
        let flaky = Flaky {
            inner: MockGdb::new(scenario::scan_array()),
            fail_next: 0,
        };
        let mut t = MiTarget::connect_with_retry(flaky, duel_target::RetryPolicy::fast(3)).unwrap();
        let mut buf = [0u8; 4];
        let err = t.get_bytes(0x10, &mut buf).unwrap_err();
        assert!(matches!(err, TargetError::IllegalMemory { .. }), "{err}");
        assert_eq!(t.retries(), 0, "faults must not be retried");
    }

    // ---- cache wiring ---------------------------------------------------

    #[test]
    fn cached_stack_coalesces_wire_reads() {
        let mut t = MiTarget::connect_cached(
            MockGdb::new(scenario::scan_array()),
            duel_target::RetryPolicy::fast(3),
            duel_target::CacheConfig::default(),
        )
        .unwrap();
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        // 16 adjacent ints share one 64-byte page: one MI round-trip.
        for i in 0..16u64 {
            t.get_bytes(x.addr + i * 4, &mut buf).unwrap();
        }
        assert_eq!(i32::from_le_bytes(buf), 115);
        let stats = t.inner().stats();
        assert_eq!(stats.backend_reads, 1, "{stats:?}");
        assert_eq!(stats.page_hits, 15);
    }

    #[test]
    fn cached_stack_retries_transient_failures_without_poisoning() {
        let flaky = Flaky {
            inner: MockGdb::new(scenario::scan_array()),
            fail_next: 0,
        };
        let mut t = MiTarget::connect_cached(
            flaky,
            duel_target::RetryPolicy::fast(3),
            duel_target::CacheConfig::default(),
        )
        .unwrap();
        let x = t.get_variable("x").unwrap();
        t.inner_mut()
            .inner_mut()
            .client_mut()
            .transport_mut()
            .fail_next = 2;
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 7);
        assert!(t.retries() >= 1);
        // The page that finally made it across is sound: nearby reads
        // come from cache and agree with the debuggee.
        let reads = t.inner().stats().backend_reads;
        t.get_bytes(x.addr + 8, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 102);
        assert_eq!(t.inner().stats().backend_reads, reads);
    }

    // ---- trace wiring ---------------------------------------------------

    #[test]
    fn traced_stack_separates_session_from_wire_traffic() {
        let flaky = Flaky {
            inner: MockGdb::new(scenario::scan_array()),
            fail_next: 0,
        };
        let mut t = MiTarget::connect_traced(
            flaky,
            duel_target::RetryPolicy::fast(3),
            duel_target::CacheConfig::default(),
        )
        .unwrap();
        let session = t.handle();
        let wire = t.inner().inner().inner().handle();
        session.set_enabled(true);
        wire.set_enabled(true);
        // The outermost decorator answers trace_handle() for dyn users.
        let dyn_handle = duel_target::Target::trace_handle(&t).unwrap();
        assert!(dyn_handle.is_enabled());

        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        // 16 adjacent ints share one page: 16 session reads, 1 wire read.
        for i in 0..16u64 {
            t.get_bytes(x.addr + i * 4, &mut buf).unwrap();
        }
        assert_eq!(session.reads(), 16);
        assert_eq!(wire.reads(), 1, "cache hits must not reach the wire");

        // A transient burst: one session-level read, but every retry
        // attempt is its own wire event.
        t.inner_mut()
            .inner_mut()
            .inner_mut()
            .inner_mut()
            .client_mut()
            .transport_mut()
            .fail_next = 2;
        t.get_bytes(x.addr + 16 * 4, &mut buf).unwrap();
        assert_eq!(session.reads(), 17);
        assert_eq!(
            wire.reads(),
            4,
            "2 failed attempts + 1 success + page fetch"
        );
    }

    #[test]
    fn traced_stack_shares_one_span_context_end_to_end() {
        // The tower is built inside-out, so the outer "session"
        // TraceTarget constructs last and pushes its span context down
        // through retry and cache into the inner "wire" layer — both
        // trace layers must attribute events to the SAME context, or
        // wire events would carry span ids no exported tree contains.
        let mut t = MiTarget::connect_traced(
            MockGdb::new(scenario::scan_array()),
            duel_target::RetryPolicy::fast(3),
            duel_target::CacheConfig::default(),
        )
        .unwrap();
        let outer = t.spans();
        let inner = t.inner().inner().inner().spans();
        assert!(
            outer.same_as(&inner),
            "inner wire TraceTarget must adopt the outer span context"
        );
        // Discovery through the trait object resolves to that one
        // context too.
        let discovered = duel_target::Target::span_context(&t).unwrap();
        assert!(discovered.same_as(&outer));

        // With spans on, a wire event recorded below retry+cache still
        // chains to the root opened above the whole tower.
        outer.set_enabled(true);
        t.handle().set_enabled(true);
        t.inner().inner().inner().handle().set_enabled(true);
        outer.begin_trace();
        let root = outer.push(duel_target::SpanKind::Root, "eval", || "x[0]".into());
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr, &mut buf).unwrap();
        outer.pop(root);
        let snap = outer.snapshot();
        let events = t.inner().inner().inner().handle().recent_events(usize::MAX);
        assert!(!events.is_empty());
        let (ok, total) = duel_target::attribution_coverage(&snap, &events);
        assert_eq!(ok, total, "every wire event must chain to the eval root");
    }

    #[test]
    fn calls_work_and_relay_output() {
        let mut t = connect(scenario::scan_array());
        // Allocate and fill a format string, then call printf.
        let addr = t.alloc_space(8, 1).unwrap();
        t.put_bytes(addr, b"v=%d\n\0").unwrap();
        let ch = t.types_mut().prim(Prim::Char);
        let pc = t.types_mut().pointer(ch);
        let int = t.types_mut().prim(Prim::Int);
        let args = [
            CallValue::from_u64(pc, addr, 8, &Abi::lp64()).unwrap(),
            CallValue::from_u64(int, 7, 4, &Abi::lp64()).unwrap(),
        ];
        let r = t.call_func("printf", &args).unwrap();
        assert_eq!(r.to_u64(&Abi::lp64()), 4);
        assert_eq!(t.take_output(), "v=7\n");
        assert!(t.has_function("printf"));
        assert!(!t.has_function("nope"));
    }
}
