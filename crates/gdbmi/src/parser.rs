//! Parser for MI output lines.

use std::collections::BTreeMap;

use crate::{
    syntax::{MiValue, Record, ResultClass},
    MiError,
};

/// Parses one line of MI output.
pub fn parse_line(line: &str) -> Result<Record, MiError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if line == "(gdb)" || line == "(gdb) " {
        return Ok(Record::Prompt);
    }
    let mut p = P {
        b: line.as_bytes(),
        i: 0,
    };
    // Optional numeric token.
    let token = p.token();
    match p.peek() {
        b'^' => {
            p.i += 1;
            let class = p.ident()?;
            let class = match class.as_str() {
                "done" => ResultClass::Done,
                "running" => ResultClass::Running,
                "connected" => ResultClass::Connected,
                "error" => ResultClass::Error,
                "exit" => ResultClass::Exit,
                other => return Err(p.err(format!("unknown result class `{other}`"))),
            };
            let results = p.results()?;
            p.eof()?;
            Ok(Record::Result {
                token,
                class,
                results,
            })
        }
        k @ (b'*' | b'=' | b'+') => {
            p.i += 1;
            let class = p.ident()?;
            let results = p.results()?;
            p.eof()?;
            Ok(Record::Async {
                kind: k as char,
                class,
                results,
            })
        }
        k @ (b'~' | b'@' | b'&') => {
            p.i += 1;
            let text = p.cstring()?;
            p.eof()?;
            Ok(Record::Stream {
                kind: k as char,
                text,
            })
        }
        _ => Err(p.err("unrecognized MI record".to_string())),
    }
}

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn peek(&self) -> u8 {
        *self.b.get(self.i).unwrap_or(&0)
    }

    fn err(&self, message: String) -> MiError {
        MiError::Parse {
            offset: self.i,
            message,
        }
    }

    fn eof(&self) -> Result<(), MiError> {
        if self.i >= self.b.len() {
            Ok(())
        } else {
            Err(self.err(format!(
                "trailing input `{}`",
                String::from_utf8_lossy(&self.b[self.i..])
            )))
        }
    }

    fn token(&mut self) -> Option<u64> {
        let start = self.i;
        while self.peek().is_ascii_digit() {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()?
            .parse()
            .ok()
    }

    fn ident(&mut self) -> Result<String, MiError> {
        let start = self.i;
        while {
            let c = self.peek();
            c == b'-' || c == b'_' || c.is_ascii_alphanumeric()
        } {
            self.i += 1;
        }
        if self.i == start {
            return Err(self.err("expected an identifier".into()));
        }
        Ok(String::from_utf8_lossy(&self.b[start..self.i]).into_owned())
    }

    fn results(&mut self) -> Result<BTreeMap<String, MiValue>, MiError> {
        let mut out = BTreeMap::new();
        let mut unnamed = 0usize;
        while self.peek() == b',' {
            self.i += 1;
            // Real gdb sometimes emits *unnamed* values in result
            // position (e.g. `+download,{…}`); the MI grammar says
            // `variable "=" value`, but practice wins. Unnamed values
            // get numeric keys, which cannot collide with MI variable
            // names (those start with a letter).
            if matches!(self.peek(), b'{' | b'[') {
                let v = self.value()?;
                out.insert(unnamed.to_string(), v);
                unnamed += 1;
                continue;
            }
            let (k, v) = self.result()?;
            out.insert(k, v);
        }
        Ok(out)
    }

    fn result(&mut self) -> Result<(String, MiValue), MiError> {
        let name = self.ident()?;
        if self.peek() != b'=' {
            return Err(self.err("expected `=` in result".into()));
        }
        self.i += 1;
        let v = self.value()?;
        Ok((name, v))
    }

    fn value(&mut self) -> Result<MiValue, MiError> {
        match self.peek() {
            b'"' => Ok(MiValue::Const(self.cstring()?)),
            b'{' => {
                self.i += 1;
                let mut m = BTreeMap::new();
                if self.peek() == b'}' {
                    self.i += 1;
                    return Ok(MiValue::Tuple(m));
                }
                loop {
                    let (k, v) = self.result()?;
                    m.insert(k, v);
                    match self.peek() {
                        b',' => self.i += 1,
                        b'}' => {
                            self.i += 1;
                            return Ok(MiValue::Tuple(m));
                        }
                        _ => return Err(self.err("expected `,` or `}`".into())),
                    }
                }
            }
            b'[' => {
                self.i += 1;
                if self.peek() == b']' {
                    self.i += 1;
                    return Ok(MiValue::List(Vec::new()));
                }
                // Lists hold either plain values or named results.
                let named = {
                    // Lookahead: ident then '='.
                    let save = self.i;
                    let is_named = self.ident().is_ok() && self.peek() == b'=';
                    self.i = save;
                    is_named
                };
                if named {
                    let mut v = Vec::new();
                    loop {
                        let (k, val) = self.result()?;
                        v.push((k, val));
                        match self.peek() {
                            b',' => self.i += 1,
                            b']' => {
                                self.i += 1;
                                return Ok(MiValue::ResultList(v));
                            }
                            _ => return Err(self.err("expected `,` or `]`".into())),
                        }
                    }
                }
                let mut v = Vec::new();
                loop {
                    v.push(self.value()?);
                    match self.peek() {
                        b',' => self.i += 1,
                        b']' => {
                            self.i += 1;
                            return Ok(MiValue::List(v));
                        }
                        _ => return Err(self.err("expected `,` or `]`".into())),
                    }
                }
            }
            _ => Err(self.err("expected a value".into())),
        }
    }

    fn cstring(&mut self) -> Result<String, MiError> {
        if self.peek() != b'"' {
            return Err(self.err("expected a c-string".into()));
        }
        self.i += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                0 => return Err(self.err("unterminated c-string".into())),
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let c = self.peek();
                    self.i += 1;
                    out.push(match c {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'\\' => '\\',
                        b'"' => '"',
                        b'0' => '\0',
                        other => other as char,
                    });
                }
                other => {
                    out.push(other as char);
                    self.i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt() {
        assert_eq!(parse_line("(gdb)").unwrap(), Record::Prompt);
        assert_eq!(parse_line("(gdb)\r\n").unwrap(), Record::Prompt);
    }

    #[test]
    fn done_with_results() {
        // Authentic shape from `-data-evaluate-expression`.
        let r = parse_line(r#"7^done,value="0x4015bc""#).unwrap();
        match r {
            Record::Result {
                token,
                class,
                results,
            } => {
                assert_eq!(token, Some(7));
                assert_eq!(class, ResultClass::Done);
                assert_eq!(results.get("value").unwrap().as_str(), Some("0x4015bc"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_tuples_and_lists() {
        // Authentic shape from `-data-read-memory-bytes`.
        let r = parse_line(r#"^done,memory=[{begin="0x100",end="0x104",contents="07000000"}]"#)
            .unwrap();
        match r {
            Record::Result { results, .. } => {
                let mem = results.get("memory").unwrap();
                let first = &mem.items()[0];
                assert_eq!(first.get_str("contents"), Some("07000000"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn async_stopped() {
        let r = parse_line(
            r#"*stopped,reason="breakpoint-hit",bkptno="1",frame={func="main",line="7"}"#,
        )
        .unwrap();
        match r {
            Record::Async {
                kind,
                class,
                results,
            } => {
                assert_eq!(kind, '*');
                assert_eq!(class, "stopped");
                let frame = results.get("frame").unwrap();
                assert_eq!(frame.get_str("line"), Some("7"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stream_records() {
        let r = parse_line(r#"~"Reading symbols...\n""#).unwrap();
        assert_eq!(
            r,
            Record::Stream {
                kind: '~',
                text: "Reading symbols...\n".into()
            }
        );
    }

    #[test]
    fn result_lists() {
        let r = parse_line(r#"^done,stack=[frame={level="0"},frame={level="1"}]"#).unwrap();
        match r {
            Record::Result { results, .. } => match results.get("stack").unwrap() {
                MiValue::ResultList(v) => {
                    assert_eq!(v.len(), 2);
                    assert_eq!(v[0].0, "frame");
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_containers() {
        let r = parse_line(r#"^done,groups=[],frame={}"#).unwrap();
        match r {
            Record::Result { results, .. } => {
                assert_eq!(results.get("groups").unwrap().items(), &[]);
                assert!(matches!(
                    results.get("frame").unwrap(),
                    MiValue::Tuple(m) if m.is_empty()
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_record() {
        let r = parse_line(r#"^error,msg="No symbol \"zz\" in current context.""#).unwrap();
        match r {
            Record::Result { class, results, .. } => {
                assert_eq!(class, ResultClass::Error);
                assert!(results.get("msg").unwrap().as_str().unwrap().contains("zz"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse_line("garbage").is_err());
        assert!(parse_line(r#"^done,x="unterminated"#).is_err());
        assert!(parse_line(r#"^done,x={a="1""#).is_err());
        assert!(parse_line(r#"^wat"#).is_err());
    }
}
