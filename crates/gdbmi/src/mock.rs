//! An in-process MI server backed by a simulated debuggee.
//!
//! `MockGdb` answers the MI command subset that [`crate::MiTarget`]
//! issues, against a [`SimTarget`] (typically one of the paper
//! scenarios). Responses follow the gdb/MI output grammar exactly, so
//! the full client → parser → adapter stack is exercised; program
//! output from native calls (e.g. `printf`) is relayed as `@` target
//! stream records, as a real gdb does.

use std::collections::VecDeque;

use duel_ctype::{Prim, TypeKind};
use duel_target::{CallValue, SimTarget, Target};

use crate::{client::MiTransport, command::escape, MiError};

/// The mock MI server.
pub struct MockGdb {
    /// The simulated debuggee being served.
    pub sim: SimTarget,
    queue: VecDeque<String>,
    /// Every command line received (for protocol tests).
    pub log: Vec<String>,
}

impl MockGdb {
    /// Serves `sim` over MI.
    pub fn new(sim: SimTarget) -> MockGdb {
        MockGdb {
            sim,
            queue: VecDeque::new(),
            log: Vec::new(),
        }
    }

    fn reply(&mut self, token: &str, body: String) {
        self.queue.push_back(format!("{token}{body}"));
        self.queue.push_back("(gdb)".to_string());
    }

    fn reply_error(&mut self, token: &str, msg: &str) {
        let msg = escape(msg);
        self.queue.push_back(format!("{token}^error,msg=\"{msg}\""));
        self.queue.push_back("(gdb)".to_string());
    }

    fn emit_target_output(&mut self) {
        let out = self.sim.take_output();
        if !out.is_empty() {
            self.queue.push_front(format!("@\"{}\"", escape(&out)));
        }
    }

    fn handle(&mut self, line: &str) {
        self.log.push(line.to_string());
        let token_end = line
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(line.len());
        let (token, rest) = line.split_at(token_end);
        let mut parts = split_args(rest);
        if parts.is_empty() {
            self.reply_error(token, "empty command");
            return;
        }
        let cmd = parts.remove(0);
        match cmd.as_str() {
            "-data-read-memory-bytes" => {
                let (addr, count) = match (
                    parts.first().and_then(|s| parse_u64(s)),
                    parts.get(1).and_then(|s| parse_u64(s)),
                ) {
                    (Some(a), Some(c)) => (a, c),
                    _ => return self.reply_error(token, "bad arguments"),
                };
                let mut buf = vec![0u8; count as usize];
                match self.sim.get_bytes(addr, &mut buf) {
                    Ok(()) => {
                        let hex: String = buf.iter().map(|b| format!("{b:02x}")).collect();
                        self.reply(
                            token,
                            format!(
                                "^done,memory=[{{begin=\"0x{addr:x}\",\
                                 end=\"0x{:x}\",contents=\"{hex}\"}}]",
                                addr + count
                            ),
                        );
                    }
                    Err(e) => self.reply_error(token, &e.to_string()),
                }
            }
            "-data-write-memory-bytes" => {
                let addr = parts.first().and_then(|s| parse_u64(s));
                let hex = parts.get(1).map(|s| s.trim_matches('"'));
                let (addr, hex) = match (addr, hex) {
                    (Some(a), Some(h)) => (a, h),
                    _ => return self.reply_error(token, "bad arguments"),
                };
                let bytes = match decode_hex(hex) {
                    Some(b) => b,
                    None => return self.reply_error(token, "bad hex"),
                };
                match self.sim.put_bytes(addr, &bytes) {
                    Ok(()) => self.reply(token, "^done".to_string()),
                    Err(e) => self.reply_error(token, &e.to_string()),
                }
            }
            "-data-evaluate-expression" => {
                let expr = parts.join(" ");
                let expr = expr.trim_matches('"').replace("\\\"", "\"");
                self.evaluate(token, &expr);
            }
            "-duel-symbol-info" => {
                let name = parts.first().cloned().unwrap_or_default();
                match self.sim.get_variable(&name) {
                    Some(v) => {
                        let ty = self.sim.types().display(v.ty);
                        self.reply(
                            token,
                            format!(
                                "^done,found=\"1\",addr=\"0x{:x}\",\
                                 type=\"{}\"",
                                v.addr,
                                escape(&ty)
                            ),
                        );
                    }
                    None => self.reply(token, "^done,found=\"0\"".to_string()),
                }
            }
            "-duel-frame-var" => {
                let name = parts.first().cloned().unwrap_or_default();
                let frame = parts
                    .get(1)
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or(0);
                match self.sim.get_variable_in_frame(&name, frame) {
                    Some(v) => {
                        let ty = self.sim.types().display(v.ty);
                        self.reply(
                            token,
                            format!(
                                "^done,found=\"1\",addr=\"0x{:x}\",\
                                 type=\"{}\"",
                                v.addr,
                                escape(&ty)
                            ),
                        );
                    }
                    None => self.reply(token, "^done,found=\"0\"".to_string()),
                }
            }
            "-duel-struct-info" | "-duel-union-info" => {
                let is_union = cmd == "-duel-union-info";
                let tag = parts.first().cloned().unwrap_or_default();
                let rid = if is_union {
                    self.sim.lookup_union(&tag)
                } else {
                    self.sim.lookup_struct(&tag)
                };
                match rid {
                    Some(rid) => {
                        let rec = self.sim.types().record(rid).clone();
                        if !rec.complete {
                            return self.reply(token, "^done,found=\"0\"".to_string());
                        }
                        let fields: Vec<String> = rec
                            .fields
                            .iter()
                            .map(|f| {
                                let ty = self.sim.types().display(f.ty);
                                let bits = f.bits.map(|b| b.to_string()).unwrap_or_default();
                                format!(
                                    "{{name=\"{}\",type=\"{}\",\
                                     bits=\"{}\"}}",
                                    escape(&f.name),
                                    escape(&ty),
                                    bits
                                )
                            })
                            .collect();
                        self.reply(
                            token,
                            format!("^done,found=\"1\",fields=[{}]", fields.join(",")),
                        );
                    }
                    None => self.reply(token, "^done,found=\"0\"".to_string()),
                }
            }
            "-duel-enum-info" => {
                let tag = parts.first().cloned().unwrap_or_default();
                match self.sim.lookup_enum(&tag) {
                    Some(eid) => {
                        let def = self.sim.types().enum_def(eid).clone();
                        let es: Vec<String> = def
                            .enumerators
                            .iter()
                            .map(|(n, v)| format!("{{name=\"{}\",value=\"{}\"}}", escape(n), v))
                            .collect();
                        self.reply(
                            token,
                            format!("^done,found=\"1\",enumerators=[{}]", es.join(",")),
                        );
                    }
                    None => self.reply(token, "^done,found=\"0\"".to_string()),
                }
            }
            "-duel-typedef-info" => {
                let name = parts.first().cloned().unwrap_or_default();
                match self.sim.lookup_typedef(&name) {
                    Some(ty) => {
                        let t = self.sim.types().display(ty);
                        self.reply(token, format!("^done,found=\"1\",type=\"{}\"", escape(&t)));
                    }
                    None => self.reply(token, "^done,found=\"0\"".to_string()),
                }
            }
            "-duel-alloc" => {
                let size = parts.first().and_then(|s| parse_u64(s)).unwrap_or(0);
                let align = parts.get(1).and_then(|s| parse_u64(s)).unwrap_or(8);
                match self.sim.alloc_space(size, align) {
                    Ok(a) => self.reply(token, format!("^done,addr=\"0x{a:x}\"")),
                    Err(e) => self.reply_error(token, &e.to_string()),
                }
            }
            "-duel-abi" => {
                let abi = self.sim.abi();
                let endian = match abi.endian {
                    duel_ctype::Endian::Little => "little",
                    duel_ctype::Endian::Big => "big",
                };
                self.reply(
                    token,
                    format!(
                        "^done,ptr=\"{}\",long=\"{}\",\
                         endian=\"{endian}\",char-signed=\"{}\"",
                        abi.pointer_bytes, abi.long_bytes, abi.char_signed as u8
                    ),
                );
            }
            "-duel-frame-count" => {
                let n = self.sim.frame_count();
                self.reply(token, format!("^done,count=\"{n}\""));
            }
            "-duel-frame-info" => {
                let n = parts
                    .first()
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or(0);
                match self.sim.frame_info(n) {
                    Some(f) => self.reply(
                        token,
                        format!(
                            "^done,func=\"{}\",line=\"{}\"",
                            escape(&f.function),
                            f.line.unwrap_or(0)
                        ),
                    ),
                    None => self.reply_error(token, "no such frame"),
                }
            }
            "-duel-has-function" => {
                let name = parts.first().cloned().unwrap_or_default();
                let has = self.sim.has_function(&name);
                self.reply(token, format!("^done,found=\"{}\"", has as u8));
            }
            other => {
                self.reply_error(token, &format!("Undefined MI command: {other}"));
            }
        }
    }

    /// Evaluates the expression subset the adapter uses: `&name` and
    /// `f(n1, n2, …)` calls with numeric arguments.
    fn evaluate(&mut self, token: &str, expr: &str) {
        let token = token.to_string();
        if let Some(name) = expr.strip_prefix('&') {
            match self.sim.get_variable(name.trim()) {
                Some(v) => self.reply(&token, format!("^done,value=\"0x{:x}\"", v.addr)),
                None => {
                    self.reply_error(&token, &format!("No symbol \"{name}\" in current context."))
                }
            }
            return;
        }
        // A call: name(args).
        if let Some(open) = expr.find('(') {
            let name = expr[..open].trim().to_string();
            let inner = expr[open + 1..].trim_end().trim_end_matches(')');
            let mut args = Vec::new();
            if !inner.trim().is_empty() {
                for a in inner.split(',') {
                    let a = a.trim();
                    let cv = if a.contains('.') {
                        match a.parse::<f64>() {
                            Ok(f) => {
                                let d = self.sim.core.types.prim(Prim::Double);
                                // 8-byte doubles always fit the call boundary.
                                CallValue::from_u64(d, f.to_bits(), 8, self.sim.abi()).unwrap()
                            }
                            Err(_) => return self.reply_error(&token, "bad float argument"),
                        }
                    } else {
                        match parse_i64(a) {
                            Some(v) => {
                                let long = self.sim.core.types.prim(Prim::LongLong);
                                CallValue::from_u64(long, v as u64, 8, self.sim.abi()).unwrap()
                            }
                            None => return self.reply_error(&token, "bad argument"),
                        }
                    };
                    args.push(cv);
                }
            }
            match self.sim.call_func(&name, &args) {
                Ok(r) => {
                    self.emit_target_output();
                    let v = r.to_u64(self.sim.abi());
                    let is_ptr = matches!(self.sim.types().kind(r.ty), TypeKind::Pointer(_));
                    let text = if is_ptr {
                        format!("0x{v:x}")
                    } else {
                        // Sign-extend through the declared width.
                        let size = r.bytes.len();
                        let sv = duel_target::value_io::sign_extend(v, size);
                        format!("{sv}")
                    };
                    self.reply(&token, format!("^done,value=\"{text}\""));
                }
                Err(e) => self.reply_error(&token, &e.to_string()),
            }
            return;
        }
        self.reply_error(&token, "unsupported expression");
    }
}

impl MiTransport for MockGdb {
    fn send_line(&mut self, line: &str) -> Result<(), MiError> {
        self.handle(line);
        Ok(())
    }

    fn recv_line(&mut self) -> Result<String, MiError> {
        self.queue.pop_front().ok_or(MiError::Disconnected)
    }
}

fn split_args(s: &str) -> Vec<String> {
    // Split on spaces, keeping quoted segments together.
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut prev_escape = false;
    for c in s.chars() {
        match c {
            '"' if !prev_escape => {
                in_str = !in_str;
                cur.push(c);
            }
            ' ' if !in_str => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(c),
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_i64(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::MiClient;
    use duel_target::scenario;

    #[test]
    fn memory_roundtrip_over_mi() {
        let mut sim = scenario::scan_array();
        let x = sim.get_variable("x").unwrap();
        let mut c = MiClient::new(MockGdb::new(sim));
        let r = c
            .execute(&crate::command::read_memory_bytes(x.addr + 12, 4))
            .unwrap();
        let mem = r.get("memory").unwrap();
        assert_eq!(
            mem.items()[0].get_str("contents"),
            Some("07000000") // x[3] = 7, little-endian
        );
        // Write and read back.
        c.execute(&crate::command::write_memory_bytes(
            x.addr + 12,
            &42i32.to_le_bytes(),
        ))
        .unwrap();
        let r = c
            .execute(&crate::command::read_memory_bytes(x.addr + 12, 4))
            .unwrap();
        assert_eq!(
            r.get("memory").unwrap().items()[0].get_str("contents"),
            Some("2a000000")
        );
    }

    #[test]
    fn unmapped_reads_are_mi_errors() {
        let sim = scenario::scan_array();
        let mut c = MiClient::new(MockGdb::new(sim));
        match c.execute(&crate::command::read_memory_bytes(0x99, 4)) {
            Err(MiError::ErrorRecord(m)) => {
                assert!(m.contains("illegal memory"), "{m}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn symbol_and_type_info() {
        let sim = scenario::hash_table_basic();
        let mut c = MiClient::new(MockGdb::new(sim));
        let r = c.execute(&crate::command::symbol_info("hash")).unwrap();
        assert_eq!(r.get("found").unwrap().as_str(), Some("1"));
        assert_eq!(
            r.get("type").unwrap().as_str(),
            Some("struct symbol *[1024]")
        );
        let r = c
            .execute(&crate::command::record_info("symbol", false))
            .unwrap();
        let fields = match r.get("fields").unwrap() {
            crate::syntax::MiValue::List(v) => v.clone(),
            other => panic!("{other:?}"),
        };
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[1].get_str("name"), Some("scope"));
        assert_eq!(fields[1].get_str("type"), Some("int"));
    }

    #[test]
    fn calls_relay_target_output() {
        let sim = scenario::scan_array();
        let mut c = MiClient::new(MockGdb::new(sim));
        // Allocate a format string in target space via the mock, then
        // write it and call printf on it.
        let r = c.execute(&crate::command::alloc(8, 1)).unwrap();
        let addr = parse_u64(r.get("addr").unwrap().as_str().unwrap()).unwrap();
        c.execute(&crate::command::write_memory_bytes(addr, b"n=%d\n\0"))
            .unwrap();
        let r = c
            .execute(&crate::command::evaluate(&format!("printf({addr}, 42)")))
            .unwrap();
        assert_eq!(r.get("value").unwrap().as_str(), Some("5"));
        assert_eq!(c.take_target_out(), "n=42\n");
    }

    #[test]
    fn abi_query() {
        let sim = scenario::scan_array();
        let mut c = MiClient::new(MockGdb::new(sim));
        let r = c.execute(&crate::command::abi()).unwrap();
        assert_eq!(r.get("ptr").unwrap().as_str(), Some("8"));
        assert_eq!(r.get("endian").unwrap().as_str(), Some("little"));
    }
}
