//! MI command serialization.
//!
//! The standard commands (`-data-read-memory-bytes`,
//! `-data-write-memory-bytes`, `-data-evaluate-expression`,
//! `-break-insert`, `-exec-*`) follow the gdb manual. The `-duel-*`
//! commands are this reproduction's documented stand-ins for the
//! symbol/type queries that a real gdb session would assemble from
//! `-symbol-info-variables`, `ptype`, and address evaluation; the mock
//! server implements them against the simulated debuggee.

/// Escapes a string for inclusion in an MI c-string argument.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// `-data-read-memory-bytes ADDR COUNT`.
pub fn read_memory_bytes(addr: u64, count: u64) -> String {
    format!("-data-read-memory-bytes 0x{addr:x} {count}")
}

/// `-data-write-memory-bytes ADDR "HEX"`.
pub fn write_memory_bytes(addr: u64, bytes: &[u8]) -> String {
    let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
    format!("-data-write-memory-bytes 0x{addr:x} \"{hex}\"")
}

/// `-data-evaluate-expression "EXPR"`.
pub fn evaluate(expr: &str) -> String {
    format!("-data-evaluate-expression \"{}\"", escape(expr))
}

/// `-break-insert LOCATION`.
pub fn break_insert(location: &str) -> String {
    format!("-break-insert {location}")
}

/// `-exec-run`.
pub fn exec_run() -> String {
    "-exec-run".to_string()
}

/// `-exec-continue`.
pub fn exec_continue() -> String {
    "-exec-continue".to_string()
}

/// `-duel-symbol-info NAME` — variable address/type lookup.
pub fn symbol_info(name: &str) -> String {
    format!("-duel-symbol-info {name}")
}

/// `-duel-frame-var NAME FRAME` — lookup in a specific frame.
pub fn frame_var(name: &str, frame: usize) -> String {
    format!("-duel-frame-var {name} {frame}")
}

/// `-duel-struct-info TAG` / `-duel-union-info TAG`.
pub fn record_info(tag: &str, is_union: bool) -> String {
    if is_union {
        format!("-duel-union-info {tag}")
    } else {
        format!("-duel-struct-info {tag}")
    }
}

/// `-duel-enum-info TAG`.
pub fn enum_info(tag: &str) -> String {
    format!("-duel-enum-info {tag}")
}

/// `-duel-typedef-info NAME`.
pub fn typedef_info(name: &str) -> String {
    format!("-duel-typedef-info {name}")
}

/// `-duel-alloc SIZE ALIGN` — debugger scratch allocation
/// (`duel_alloc_target_space`).
pub fn alloc(size: u64, align: u64) -> String {
    format!("-duel-alloc {size} {align}")
}

/// `-duel-abi` — word size and endianness of the target.
pub fn abi() -> String {
    "-duel-abi".to_string()
}

/// `-duel-frame-count`.
pub fn frame_count() -> String {
    "-duel-frame-count".to_string()
}

/// `-duel-frame-info N`.
pub fn frame_info(n: usize) -> String {
    format!("-duel-frame-info {n}")
}

/// `-duel-has-function NAME`.
pub fn has_function(name: &str) -> String {
    format!("-duel-has-function {name}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering() {
        assert_eq!(
            read_memory_bytes(0x100, 4),
            "-data-read-memory-bytes 0x100 4"
        );
        assert_eq!(
            write_memory_bytes(0x10, &[0xde, 0xad]),
            "-data-write-memory-bytes 0x10 \"dead\""
        );
        assert_eq!(
            evaluate("printf(\"%d\", 3)"),
            "-data-evaluate-expression \"printf(\\\"%d\\\", 3)\""
        );
        assert_eq!(symbol_info("x"), "-duel-symbol-info x");
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
