//! Backend supervision for MI connections: a hung-turn watchdog on the
//! transport, a process-respawn reconnect strategy, and
//! [`connect_supervised`] assembling the full fault-tolerant tower
//! `SupervisedTarget<RetryTarget<CachedTarget<MiTarget<WatchdogTransport>>>>`.
//!
//! The division of labour across the tower:
//!
//! * [`WatchdogTransport`] bounds every MI *turn* (send → reply) with a
//!   wall-clock deadline. A debugger that stops answering mid-turn is
//!   declared dead — the watchdog refuses further traffic so the layers
//!   above see a clean transient failure instead of blocking forever.
//! * `RetryTarget` absorbs short transient bursts (dropped lines).
//! * [`duel_target::SupervisedTarget`] watches the retried failure
//!   stream, trips its circuit breaker when the backend looks dead, and
//!   drives [`MiResync`] to respawn the process and resync the session.
//! * [`MiResync`] owns the respawn: a factory closure produces a fresh
//!   transport (a new MI process), the stale page cache is dropped
//!   (those pages belong to the dead process's address space epoch),
//!   and [`crate::MiTarget::reattach`] re-runs the handshake, verifies
//!   the type-table snapshot, and re-resolves the symbol working set.

use std::time::{Duration, Instant};

use duel_target::{
    probe_read, AsyncTarget, CacheConfig, CachedTarget, Reconnect, ResyncReport, RetryPolicy,
    RetryTarget, SupervisedTarget, SupervisorConfig, TargetResult, DEFAULT_PROBE_ADDR,
};

use crate::{target::to_target_err, MiError, MiTarget, MiTransport};

/// The full supervised MI tower built by [`connect_supervised`].
pub type SupervisedMi<T> =
    SupervisedTarget<RetryTarget<CachedTarget<MiTarget<WatchdogTransport<T>>>>>;

/// The pipelined MI tower built by [`connect_pipelined`]: like
/// [`SupervisedMi`], but the MI target — transport, watchdog and all —
/// is owned by a [`duel_target::AsyncTarget`] I/O actor under the page
/// cache, so prefetch windows stream on a worker thread while the
/// evaluator consumes the previous one. The watchdog *moves into the
/// actor* with the transport: its turn clock arms and fires on the
/// worker thread, so a hung MI turn stalls only the in-flight window,
/// and the kill it raises surfaces to the supervisor as an ordinary
/// failed completion.
pub type PipelinedMi<T> =
    SupervisedTarget<RetryTarget<CachedTarget<AsyncTarget<MiTarget<WatchdogTransport<T>>>>>>;

/// A transport decorator that bounds each MI turn with a deadline.
///
/// `send_line` arms the clock; every `recv_line` checks it. A reply
/// that arrives after the deadline (or a receive attempted after it has
/// already passed) kills the connection: the late line is discarded and
/// all further traffic fails with [`MiError::Disconnected`] until the
/// supervisor respawns the process. Killing — rather than merely
/// erroring once — matches what a process supervisor does with a hung
/// child: a debugger stuck mid-turn cannot be trusted to frame its next
/// reply correctly.
pub struct WatchdogTransport<T: MiTransport> {
    inner: T,
    deadline: Duration,
    armed: Option<Instant>,
    kills: u64,
    dead: bool,
}

impl<T: MiTransport> WatchdogTransport<T> {
    /// Wraps `inner`, bounding each turn by `deadline`.
    pub fn new(inner: T, deadline: Duration) -> WatchdogTransport<T> {
        WatchdogTransport {
            inner,
            deadline,
            armed: None,
            kills: 0,
            dead: false,
        }
    }

    /// How many turns the watchdog has killed.
    pub fn kills(&self) -> u64 {
        self.kills
    }

    /// Whether the connection has been killed.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    fn kill(&mut self) -> MiError {
        self.kills += 1;
        self.dead = true;
        self.armed = None;
        MiError::Disconnected
    }
}

impl<T: MiTransport> MiTransport for WatchdogTransport<T> {
    fn send_line(&mut self, line: &str) -> Result<(), MiError> {
        if self.dead {
            return Err(MiError::Disconnected);
        }
        self.armed = Some(Instant::now());
        self.inner.send_line(line)
    }

    fn recv_line(&mut self) -> Result<String, MiError> {
        if self.dead {
            return Err(MiError::Disconnected);
        }
        if let Some(t0) = self.armed {
            if t0.elapsed() > self.deadline {
                return Err(self.kill());
            }
        }
        let line = self.inner.recv_line()?;
        // Deadline-aware kill: a reply that limped in late is as
        // untrustworthy as no reply — the turn is already hung from the
        // caller's point of view, so discard the line and kill.
        if let Some(t0) = self.armed {
            if t0.elapsed() > self.deadline {
                return Err(self.kill());
            }
        }
        Ok(line)
    }
}

/// The reconnect strategy for MI towers: respawn the debugger process
/// via a factory closure and resync through
/// [`crate::MiTarget::reattach`].
pub struct MiResync<T: MiTransport> {
    factory: Box<dyn FnMut() -> Result<T, MiError> + Send>,
    turn_deadline: Duration,
}

impl<T: MiTransport> MiResync<T> {
    /// A strategy that calls `factory` for each respawn, arming every
    /// new transport with a [`WatchdogTransport`] of `turn_deadline`.
    pub fn new<F>(factory: F, turn_deadline: Duration) -> MiResync<T>
    where
        F: FnMut() -> Result<T, MiError> + Send + 'static,
    {
        MiResync {
            factory: Box::new(factory),
            turn_deadline,
        }
    }
}

impl<T: MiTransport + Send> Reconnect<RetryTarget<CachedTarget<MiTarget<WatchdogTransport<T>>>>>
    for MiResync<T>
{
    fn probe(
        &mut self,
        inner: &mut RetryTarget<CachedTarget<MiTarget<WatchdogTransport<T>>>>,
    ) -> TargetResult<()> {
        // The probe address is unmapped, so a live backend answers with
        // a fault (proof of life) that the cache below never stores —
        // a dead wire can't hide behind cached pages.
        probe_read(inner, DEFAULT_PROBE_ADDR)
    }

    fn reconnect(
        &mut self,
        inner: &mut RetryTarget<CachedTarget<MiTarget<WatchdogTransport<T>>>>,
    ) -> TargetResult<ResyncReport> {
        let fresh = (self.factory)().map_err(to_target_err)?;
        let cache = inner.inner_mut();
        // Every cached page belongs to the dead process's address-space
        // epoch; serving one after the respawn would be silent
        // corruption.
        cache.invalidate_all();
        cache
            .inner_mut()
            .reattach(WatchdogTransport::new(fresh, self.turn_deadline))
    }
}

impl<T: MiTransport + Send + 'static>
    Reconnect<RetryTarget<CachedTarget<AsyncTarget<MiTarget<WatchdogTransport<T>>>>>>
    for MiResync<T>
{
    fn probe(
        &mut self,
        inner: &mut RetryTarget<CachedTarget<AsyncTarget<MiTarget<WatchdogTransport<T>>>>>,
    ) -> TargetResult<()> {
        probe_read(inner, DEFAULT_PROBE_ADDR)
    }

    fn reconnect(
        &mut self,
        inner: &mut RetryTarget<CachedTarget<AsyncTarget<MiTarget<WatchdogTransport<T>>>>>,
    ) -> TargetResult<ResyncReport> {
        let fresh = (self.factory)().map_err(to_target_err)?;
        let cache = inner.inner_mut();
        cache.invalidate_all();
        // The resync handshake needs the MI target on this thread:
        // park the actor (draining in-flight windows — they belong to
        // the dead process), reattach, then resume pipelining.
        let actor = cache.inner_mut();
        let was_async = actor.is_async();
        actor.set_async(false);
        let report = actor
            .inner_mut()
            .expect("inline after set_async(false)")
            .reattach(WatchdogTransport::new(fresh, self.turn_deadline));
        actor.set_async(was_async);
        report
    }
}

/// Connects a fully supervised MI tower:
/// `SupervisedTarget<RetryTarget<CachedTarget<MiTarget<WatchdogTransport>>>>`.
///
/// `factory` spawns (and respawns) the MI transport — for a real gdb
/// this launches the process and wires its stdio; in tests it builds a
/// fresh [`crate::MockGdb`]. Each spawned transport is wrapped in a
/// [`WatchdogTransport`] bounding every MI turn by `turn_deadline`.
/// When the circuit breaker trips, [`MiResync`] respawns via the same
/// factory, invalidates the page cache, and resyncs session state; see
/// [`crate::MiTarget::reattach`] for the resync protocol.
pub fn connect_supervised<T, F>(
    mut factory: F,
    policy: RetryPolicy,
    cache: CacheConfig,
    supervisor: SupervisorConfig,
    turn_deadline: Duration,
) -> TargetResult<SupervisedMi<T>>
where
    T: MiTransport + Send + 'static,
    F: FnMut() -> Result<T, MiError> + Send + 'static,
{
    let first = factory().map_err(to_target_err)?;
    let mi = MiTarget::connect(WatchdogTransport::new(first, turn_deadline))?;
    let tower = RetryTarget::with_policy(CachedTarget::with_config(mi, cache), policy);
    Ok(SupervisedTarget::with_strategy(
        tower,
        supervisor,
        Box::new(MiResync::new(factory, turn_deadline)),
    ))
}

/// Connects the [`PipelinedMi`] tower: [`connect_supervised`] with the
/// MI target handed to an I/O actor (started immediately), so vectored
/// prefetch windows overlap evaluation. Everything the supervisor
/// relies on is preserved: the same respawn factory, the same resync
/// protocol (the actor is parked for the handshake and restarted
/// after), and the same per-turn watchdog — now ticking on the worker
/// thread, where the hung turn actually blocks.
pub fn connect_pipelined<T, F>(
    mut factory: F,
    policy: RetryPolicy,
    cache: CacheConfig,
    supervisor: SupervisorConfig,
    turn_deadline: Duration,
) -> TargetResult<PipelinedMi<T>>
where
    T: MiTransport + Send + 'static,
    F: FnMut() -> Result<T, MiError> + Send + 'static,
{
    let first = factory().map_err(to_target_err)?;
    let mi = MiTarget::connect(WatchdogTransport::new(first, turn_deadline))?;
    let tower = RetryTarget::with_policy(
        CachedTarget::with_config(AsyncTarget::spawned(mi), cache),
        policy,
    );
    Ok(SupervisedTarget::with_strategy(
        tower,
        supervisor,
        Box::new(MiResync::new(factory, turn_deadline)),
    ))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use duel_target::{scenario, CircuitState, Target, TargetError};

    use super::*;
    use crate::mock::MockGdb;

    const LONG: Duration = Duration::from_secs(3600);

    /// A transport with a shared kill switch, modelling a debugger
    /// process that can die out from under the session.
    struct Killable {
        inner: MockGdb,
        dead: Arc<AtomicBool>,
    }

    impl MiTransport for Killable {
        fn send_line(&mut self, line: &str) -> Result<(), MiError> {
            if self.dead.load(Ordering::SeqCst) {
                return Err(MiError::Disconnected);
            }
            self.inner.send_line(line)
        }

        fn recv_line(&mut self) -> Result<String, MiError> {
            if self.dead.load(Ordering::SeqCst) {
                return Err(MiError::Disconnected);
            }
            self.inner.recv_line()
        }
    }

    /// A transport whose replies take `delay` of wall time.
    struct Sleepy {
        inner: MockGdb,
        delay: Duration,
    }

    impl MiTransport for Sleepy {
        fn send_line(&mut self, line: &str) -> Result<(), MiError> {
            self.inner.send_line(line)
        }

        fn recv_line(&mut self) -> Result<String, MiError> {
            std::thread::sleep(self.delay);
            self.inner.recv_line()
        }
    }

    #[test]
    fn watchdog_is_transparent_within_the_deadline() {
        let mut w = WatchdogTransport::new(MockGdb::new(scenario::scan_array()), LONG);
        w.send_line("1-duel-abi").unwrap();
        assert!(w.recv_line().unwrap().contains("ptr"));
        assert_eq!(w.kills(), 0);
        assert!(!w.is_dead());
    }

    #[test]
    fn watchdog_kills_a_hung_turn_and_stays_dead() {
        let slow = Sleepy {
            inner: MockGdb::new(scenario::scan_array()),
            delay: Duration::from_millis(20),
        };
        let mut w = WatchdogTransport::new(slow, Duration::from_millis(1));
        w.send_line("1-duel-abi").unwrap();
        assert_eq!(w.recv_line(), Err(MiError::Disconnected));
        assert_eq!(w.kills(), 1);
        assert!(w.is_dead());
        // The connection is unusable until the supervisor respawns it.
        assert_eq!(w.send_line("2-duel-abi"), Err(MiError::Disconnected));
        assert_eq!(w.recv_line(), Err(MiError::Disconnected));
        assert_eq!(w.kills(), 1, "a dead wire is not re-killed");
    }

    #[test]
    fn supervised_tower_respawns_and_resyncs_after_a_kill() {
        let switch = Arc::new(AtomicBool::new(false));
        let spawn_switch = switch.clone();
        let mut t = connect_supervised(
            move || {
                // Respawning replaces the dead process: the new one is
                // alive regardless of what happened to its predecessor.
                spawn_switch.store(false, Ordering::SeqCst);
                Ok(Killable {
                    inner: MockGdb::new(scenario::scan_array()),
                    dead: spawn_switch.clone(),
                })
            },
            RetryPolicy::fast(1),
            CacheConfig::default(),
            SupervisorConfig::fast(2),
            LONG,
        )
        .unwrap();

        let x = t.inner_mut().get_variable("x").unwrap();
        let mut before = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut before).unwrap();
        assert_eq!(i32::from_le_bytes(before), 7);

        // The backend dies. Reads of *uncached* pages fail; after two
        // the breaker trips.
        switch.store(true, Ordering::SeqCst);
        let mut buf = [0u8; 4];
        assert!(t.get_bytes(x.addr + 64, &mut buf).is_err());
        assert!(t.get_bytes(x.addr + 128, &mut buf).is_err());
        assert_eq!(t.state(), CircuitState::Open);

        // Zero cooldown: the next operation drives open → half-open →
        // respawn → resync → closed, and the answer is byte-identical
        // to the pre-kill read even though the cache was dropped.
        let mut after = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut after).unwrap();
        assert_eq!(after, before);
        assert_eq!(t.state(), CircuitState::Closed);
        let stats = t.stats();
        assert_eq!(stats.trips, 1);
        assert_eq!(stats.reconnects, 1);
        let resync = t.last_resync().expect("a resync happened");
        assert!(resync.type_table_ok);
        assert_eq!(resync.symbols, 1, "`x` was re-resolved");
        assert_eq!(resync.detail, "respawned MI process");
    }

    #[test]
    fn pipelined_tower_reads_like_the_synchronous_one() {
        let mut sync = connect_supervised(
            || Ok(MockGdb::new(scenario::scan_array())),
            RetryPolicy::fast(1),
            CacheConfig::default(),
            SupervisorConfig::fast(2),
            LONG,
        )
        .unwrap();
        let mut piped = connect_pipelined(
            || Ok(MockGdb::new(scenario::scan_array())),
            RetryPolicy::fast(1),
            CacheConfig::default(),
            SupervisorConfig::fast(2),
            LONG,
        )
        .unwrap();
        let a = sync.inner_mut().get_variable("x").unwrap();
        let b = piped.inner_mut().get_variable("x").unwrap();
        assert_eq!((a.addr, a.ty), (b.addr, b.ty));
        let mut want = [0u8; 64];
        let mut got = [0u8; 64];
        sync.get_bytes(a.addr, &mut want).unwrap();
        piped.get_bytes(b.addr, &mut got).unwrap();
        assert_eq!(want, got);
        assert!(duel_target::Target::pipeline_handle(&piped)
            .expect("actor layer discoverable")
            .is_async());
    }

    #[test]
    fn pipelined_prefetch_windows_ride_the_actor() {
        let mut t = connect_pipelined(
            || Ok(MockGdb::new(scenario::scan_array())),
            RetryPolicy::fast(1),
            CacheConfig::default(),
            SupervisorConfig::fast(2),
            LONG,
        )
        .unwrap();
        let x = t.inner_mut().get_variable("x").unwrap();
        assert!(t.prefetch_submit(&[(x.addr, 64)]), "cache plans a window");
        let c = t.prefetch_poll().expect("completion");
        assert!(c.was_async, "the window went through the I/O actor");
        assert!(c.clean > 0);
        let h = duel_target::Target::pipeline_handle(&t).unwrap();
        assert!(h.submits() >= 1);
    }

    #[test]
    fn pipelined_tower_respawns_and_resumes_the_actor() {
        let switch = Arc::new(AtomicBool::new(false));
        let spawn_switch = switch.clone();
        let mut t = connect_pipelined(
            move || {
                spawn_switch.store(false, Ordering::SeqCst);
                Ok(Killable {
                    inner: MockGdb::new(scenario::scan_array()),
                    dead: spawn_switch.clone(),
                })
            },
            RetryPolicy::fast(1),
            CacheConfig::default(),
            SupervisorConfig::fast(2),
            LONG,
        )
        .unwrap();
        let x = t.inner_mut().get_variable("x").unwrap();
        let mut before = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut before).unwrap();
        switch.store(true, Ordering::SeqCst);
        let mut buf = [0u8; 4];
        assert!(t.get_bytes(x.addr + 64, &mut buf).is_err());
        assert!(t.get_bytes(x.addr + 128, &mut buf).is_err());
        assert_eq!(t.state(), CircuitState::Open);
        // Recovery parks the actor for the MI handshake, then restarts
        // it: the tower answers identically and is still pipelined.
        let mut after = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut after).unwrap();
        assert_eq!(after, before);
        assert_eq!(t.state(), CircuitState::Closed);
        assert_eq!(t.stats().reconnects, 1);
        assert!(
            duel_target::Target::pipeline_handle(&t).unwrap().is_async(),
            "the actor resumed after the resync"
        );
    }

    #[test]
    fn watchdog_still_kills_hung_turns_inside_the_actor() {
        /// A transport whose replies hang once the shared switch flips.
        struct SwitchSleepy {
            inner: MockGdb,
            slow: Arc<AtomicBool>,
        }
        impl MiTransport for SwitchSleepy {
            fn send_line(&mut self, line: &str) -> Result<(), MiError> {
                self.inner.send_line(line)
            }
            fn recv_line(&mut self) -> Result<String, MiError> {
                if self.slow.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(20));
                }
                self.inner.recv_line()
            }
        }
        let slow = Arc::new(AtomicBool::new(false));
        let spawn_slow = slow.clone();
        let mut t = connect_pipelined(
            move || {
                Ok(SwitchSleepy {
                    inner: MockGdb::new(scenario::scan_array()),
                    slow: spawn_slow.clone(),
                })
            },
            RetryPolicy::fast(1),
            CacheConfig::default(),
            SupervisorConfig::fast(2),
            Duration::from_millis(1),
        )
        .unwrap();
        let x = t.inner_mut().get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr, &mut buf).unwrap();
        // Hang the wire: the watchdog, now ticking on the worker
        // thread, kills the turn and the failure surfaces through the
        // actor as an ordinary error (not a front-thread freeze).
        slow.store(true, Ordering::SeqCst);
        assert!(t.get_bytes(x.addr + 4096, &mut buf).is_err());
        // Healing the wire lets the supervisor respawn and recover.
        slow.store(false, Ordering::SeqCst);
        assert!(t.get_bytes(x.addr + 8192, &mut buf).is_err());
        assert_eq!(t.state(), CircuitState::Open);
        t.force_reconnect().unwrap();
        t.get_bytes(x.addr, &mut buf).unwrap();
    }

    #[test]
    fn resync_flags_a_rebuilt_debuggee() {
        // The respawned process serves a *different* program: the
        // record imported before the kill no longer exists, which the
        // type-table verification must surface (not silently adopt).
        let switch = Arc::new(AtomicBool::new(false));
        let spawn_switch = switch.clone();
        let mut spawned = 0u32;
        let mut t = connect_supervised(
            move || {
                spawn_switch.store(false, Ordering::SeqCst);
                spawned += 1;
                let sim = if spawned == 1 {
                    scenario::hash_table_basic()
                } else {
                    scenario::scan_array()
                };
                Ok(Killable {
                    inner: MockGdb::new(sim),
                    dead: spawn_switch.clone(),
                })
            },
            RetryPolicy::fast(1),
            CacheConfig::default(),
            SupervisorConfig::fast(2),
            LONG,
        )
        .unwrap();

        let hash = t.inner_mut().get_variable("hash").unwrap();
        assert!(t.inner_mut().lookup_struct("symbol").is_some());
        switch.store(true, Ordering::SeqCst);
        let mut buf = [0u8; 4];
        assert!(t.get_bytes(hash.addr + 64, &mut buf).is_err());
        assert!(t.get_bytes(hash.addr + 128, &mut buf).is_err());
        assert_eq!(t.state(), CircuitState::Open);
        // Recovery succeeds (the new process is alive) but the resync
        // report flags the drift.
        t.force_reconnect().unwrap();
        assert_eq!(t.state(), CircuitState::Closed);
        let resync = t.last_resync().unwrap();
        assert!(!resync.type_table_ok);
        assert!(
            resync.detail.contains("symbol"),
            "detail names the drifted record: {}",
            resync.detail
        );
        assert_eq!(resync.symbols, 0, "`hash` is gone from the new program");
    }

    #[test]
    fn reattach_refuses_an_abi_change() {
        let mut t = MiTarget::connect(MockGdb::new(scenario::scan_array())).unwrap();
        let ilp32 = duel_target::SimTarget::new(duel_ctype::Abi::ilp32_be());
        let err = t.reattach(MockGdb::new(ilp32)).unwrap_err();
        assert!(matches!(err, TargetError::Backend(_)));
        assert!(err.to_string().contains("ABI changed"), "{err}");
    }
}
