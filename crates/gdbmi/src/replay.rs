//! Record/replay transports.
//!
//! [`Recorder`] wraps any transport and logs the full exchange in a
//! plain-text format (`> ` sent lines, `< ` received lines).
//! [`Replayer`] serves a recorded exchange back, matching sent commands
//! *ignoring their correlation tokens*, so a session captured against
//! one debugger (a live gdb, or the mock) replays deterministically in
//! tests — the "recorded/mock MI sessions" of DESIGN.md §2.

use std::collections::VecDeque;

use crate::{client::MiTransport, MiError};

/// A transport wrapper that records every line in transit.
pub struct Recorder<T: MiTransport> {
    inner: T,
    /// The recorded exchange: `> cmd` / `< reply` lines.
    pub log: Vec<String>,
}

impl<T: MiTransport> Recorder<T> {
    /// Wraps a transport.
    pub fn new(inner: T) -> Recorder<T> {
        Recorder {
            inner,
            log: Vec::new(),
        }
    }

    /// Serializes the recording.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for l in &self.log {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Consumes the recorder, returning the inner transport and log.
    pub fn into_parts(self) -> (T, Vec<String>) {
        (self.inner, self.log)
    }
}

impl<T: MiTransport> MiTransport for Recorder<T> {
    fn send_line(&mut self, line: &str) -> Result<(), MiError> {
        self.log.push(format!("> {line}"));
        self.inner.send_line(line)
    }

    fn recv_line(&mut self) -> Result<String, MiError> {
        let line = self.inner.recv_line()?;
        self.log.push(format!("< {line}"));
        Ok(line)
    }
}

/// Strips a leading numeric correlation token.
fn strip_token(line: &str) -> &str {
    let end = line
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(line.len());
    &line[end..]
}

/// One recorded request/response exchange.
struct Exchange {
    command: String,
    replies: Vec<String>,
}

/// A transport that replays a [`Recorder`] dump.
///
/// Commands must be issued in the recorded order (tokens excepted);
/// replies are re-tokenized to match the live command's token.
pub struct Replayer {
    exchanges: VecDeque<Exchange>,
    pending: VecDeque<String>,
    /// Commands that were sent but did not match the recording.
    pub mismatches: Vec<String>,
}

impl Replayer {
    /// Parses a dump produced by [`Recorder::dump`].
    pub fn from_dump(dump: &str) -> Replayer {
        let mut exchanges: VecDeque<Exchange> = VecDeque::new();
        for line in dump.lines() {
            if let Some(cmd) = line.strip_prefix("> ") {
                exchanges.push_back(Exchange {
                    command: strip_token(cmd).to_string(),
                    replies: Vec::new(),
                });
            } else if let Some(reply) = line.strip_prefix("< ") {
                if let Some(e) = exchanges.back_mut() {
                    e.replies.push(reply.to_string());
                }
            }
        }
        Replayer {
            exchanges,
            pending: VecDeque::new(),
            mismatches: Vec::new(),
        }
    }

    /// Remaining unreplayed exchanges.
    pub fn remaining(&self) -> usize {
        self.exchanges.len()
    }
}

impl MiTransport for Replayer {
    fn send_line(&mut self, line: &str) -> Result<(), MiError> {
        let token: String = line.chars().take_while(|c| c.is_ascii_digit()).collect();
        let cmd = strip_token(line);
        let e = match self.exchanges.pop_front() {
            Some(e) => e,
            None => {
                self.mismatches.push(line.to_string());
                return Err(MiError::Disconnected);
            }
        };
        if e.command != cmd {
            self.mismatches
                .push(format!("sent `{cmd}`, recorded `{}`", e.command));
            return Err(MiError::Disconnected);
        }
        for r in e.replies {
            // Re-tokenize result records to the live token.
            let stripped = strip_token(&r);
            if stripped.starts_with('^') && !token.is_empty() {
                self.pending.push_back(format!("{token}{stripped}"));
            } else {
                self.pending.push_back(r);
            }
        }
        Ok(())
    }

    fn recv_line(&mut self) -> Result<String, MiError> {
        self.pending.pop_front().ok_or(MiError::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{command, mock::MockGdb, target::MiTarget};
    use duel_target::{scenario, Target};

    /// Records a session against the mock, then replays it without the
    /// mock and checks the adapter behaves identically.
    #[test]
    fn record_then_replay_roundtrip() {
        // Record.
        let rec = Recorder::new(MockGdb::new(scenario::hash_table_basic()));
        let mut t = MiTarget::connect(rec).unwrap();
        let hash = t.get_variable("hash").unwrap();
        let mut buf = [0u8; 8];
        t.get_bytes(hash.addr, &mut buf).unwrap();
        let dump = t.client_mut().transport().dump();

        // Replay: same calls, no simulator behind the wire.
        let replay = Replayer::from_dump(&dump);
        let mut t2 = MiTarget::connect(replay).unwrap();
        let hash2 = t2.get_variable("hash").unwrap();
        assert_eq!(hash2.addr, hash.addr);
        assert_eq!(t2.types().display(hash2.ty), "struct symbol *[1024]");
        let mut buf2 = [0u8; 8];
        t2.get_bytes(hash2.addr, &mut buf2).unwrap();
        assert_eq!(buf2, buf);
    }

    #[test]
    fn replay_rejects_divergent_commands() {
        let rec = Recorder::new(MockGdb::new(scenario::scan_array()));
        let mut t = MiTarget::connect(rec).unwrap();
        let _ = t.get_variable("x");
        let dump = t.client_mut().transport().dump();

        let replay = Replayer::from_dump(&dump);
        let mut t2 = MiTarget::connect(replay).unwrap();
        // The recording holds a `-duel-symbol-info x` next; asking for
        // a different symbol must fail loudly rather than answer
        // wrongly.
        assert!(t2.get_variable("y").is_none());
    }

    #[test]
    fn strip_token_works() {
        assert_eq!(strip_token("12-exec-run"), "-exec-run");
        assert_eq!(strip_token("^done"), "^done");
        assert_eq!(strip_token(""), "");
    }

    #[test]
    fn replayer_counts_remaining() {
        let dump = "> 1-duel-abi\n< 1^done,ptr=\"8\"\n< (gdb)\n";
        let mut r = Replayer::from_dump(dump);
        assert_eq!(r.remaining(), 1);
        r.send_line(&format!("7{}", command::abi())).unwrap();
        assert_eq!(r.remaining(), 0);
        // Replies were re-tokenized.
        assert_eq!(r.recv_line().unwrap(), "7^done,ptr=\"8\"");
        assert_eq!(r.recv_line().unwrap(), "(gdb)");
    }
}
