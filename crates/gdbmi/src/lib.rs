#![warn(missing_docs)]

//! gdb/MI protocol support and an MI-backed debugger target.
//!
//! The reproduction's environment has no gdb binary, but the paper's
//! architecture — DUEL talking to a real debugger through a narrow
//! interface — is exercised end-to-end over the gdb/MI *wire protocol*:
//!
//! * [`syntax`] / [`parser`] — a complete parser for MI output records
//!   (result records, async records, stream output, tuples, lists,
//!   c-strings), written against the grammar in the gdb manual;
//! * [`command`] — MI command serialization with token correlation;
//! * [`client`] — a transport-agnostic MI client;
//! * [`mock`] — an in-process MI server backed by a
//!   [`duel_target::SimTarget`], speaking the command subset the
//!   adapter needs (documented stand-ins for `-data-read-memory-bytes`,
//!   `-data-write-memory-bytes`, symbol/type queries, and expression
//!   calls);
//! * [`supervise`] — backend supervision: a hung-turn watchdog
//!   transport, a respawn-and-resync reconnect strategy, and
//!   [`supervise::connect_supervised`] assembling the circuit-breaker
//!   tower over an MI connection;
//! * [`target`] — [`target::MiTarget`], an implementation of the
//!   paper's [`duel_target::Target`] interface that speaks MI, fetching
//!   type definitions lazily and mirroring them into a local
//!   [`duel_ctype::TypeTable`] (exactly the "converting between gdb and
//!   Duel types" layer of the paper's interface module).
//!
//! Experiment E9 runs the paper-transcript suite through
//! `MiTarget<MockGdb>` and asserts byte-identical output with the
//! direct simulator backend.

pub mod client;
pub mod command;
pub mod mock;
pub mod parser;
pub mod replay;
pub mod supervise;
pub mod syntax;
pub mod target;

pub use client::{MiClient, MiTransport};
pub use mock::MockGdb;
pub use parser::parse_line;
pub use replay::{Recorder, Replayer};
pub use supervise::{
    connect_pipelined, connect_supervised, MiResync, PipelinedMi, SupervisedMi, WatchdogTransport,
};
pub use syntax::{MiValue, Record, ResultClass};
pub use target::MiTarget;

/// Errors from MI parsing or transport.
#[derive(Clone, Debug, PartialEq)]
pub enum MiError {
    /// Malformed MI output.
    Parse {
        /// Offset in the line.
        offset: usize,
        /// Description.
        message: String,
    },
    /// The connection produced no (further) output.
    Disconnected,
    /// The debugger answered with an `^error` record.
    ErrorRecord(String),
    /// A response lacked an expected field.
    MissingField(&'static str),
}

impl std::fmt::Display for MiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MiError::Parse { offset, message } => {
                write!(f, "MI parse error at {offset}: {message}")
            }
            MiError::Disconnected => write!(f, "MI connection closed"),
            MiError::ErrorRecord(m) => {
                write!(f, "gdb error: {m}")
            }
            MiError::MissingField(n) => {
                write!(f, "MI response missing field `{n}`")
            }
        }
    }
}

impl std::error::Error for MiError {}
