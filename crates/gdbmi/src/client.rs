//! The transport-agnostic MI client.

use std::collections::BTreeMap;

use crate::{
    parser::parse_line,
    syntax::{MiValue, Record, ResultClass},
    MiError,
};

/// A bidirectional line transport to an MI server (a gdb process's
/// stdio, or the in-process mock).
pub trait MiTransport {
    /// Sends one command line.
    fn send_line(&mut self, line: &str) -> Result<(), MiError>;

    /// Receives the next output line.
    fn recv_line(&mut self) -> Result<String, MiError>;
}

/// Per-command outcome within a pipelined [`MiClient::execute_batch`]
/// turn: the command's result record, or its own `^error`.
pub type BatchReply = Result<BTreeMap<String, MiValue>, MiError>;

/// An MI client: correlates commands with result records by token and
/// collects stream/async output.
pub struct MiClient<T: MiTransport> {
    transport: T,
    next_token: u64,
    /// Accumulated console (`~`) output.
    pub console: String,
    /// Accumulated target (`@`) output — the debuggee's stdout.
    pub target_out: String,
    /// Async records seen since the last drain.
    pub async_events: Vec<Record>,
}

impl<T: MiTransport> MiClient<T> {
    /// Wraps a transport.
    pub fn new(transport: T) -> MiClient<T> {
        MiClient {
            transport,
            next_token: 1,
            console: String::new(),
            target_out: String::new(),
            async_events: Vec::new(),
        }
    }

    /// Executes one MI command, returning the result class and results.
    ///
    /// Stream records are accumulated; `^error` results are returned as
    /// [`MiError::ErrorRecord`].
    pub fn execute(&mut self, cmd: &str) -> Result<BTreeMap<String, MiValue>, MiError> {
        let token = self.next_token;
        self.next_token += 1;
        self.transport.send_line(&format!("{token}{cmd}"))?;
        let mut result: Option<(ResultClass, BTreeMap<String, MiValue>)> = None;
        loop {
            let line = self.transport.recv_line()?;
            match parse_line(&line)? {
                Record::Prompt => {
                    return match result {
                        Some((ResultClass::Error, results)) => {
                            let msg = results
                                .get("msg")
                                .and_then(|v| v.as_str())
                                .unwrap_or("unknown error")
                                .to_string();
                            Err(MiError::ErrorRecord(msg))
                        }
                        Some((_, results)) => Ok(results),
                        None => Err(MiError::Disconnected),
                    };
                }
                Record::Result {
                    token: t,
                    class,
                    results,
                } => {
                    if t == Some(token) || t.is_none() {
                        result = Some((class, results));
                    }
                }
                Record::Stream { kind: '~', text } => {
                    self.console.push_str(&text);
                }
                Record::Stream { kind: '@', text } => {
                    self.target_out.push_str(&text);
                }
                Record::Stream { .. } => {}
                r @ Record::Async { .. } => {
                    self.async_events.push(r);
                }
            }
        }
    }

    /// Executes several MI commands in one pipelined turn: all command
    /// lines are sent up front, then output is drained until every
    /// command's prompt has arrived, correlating result records back to
    /// their commands by token. Per-command `^error` records land in
    /// that command's slot; only a transport failure aborts the batch.
    pub fn execute_batch(&mut self, cmds: &[String]) -> Result<Vec<BatchReply>, MiError> {
        let first = self.next_token;
        self.next_token += cmds.len() as u64;
        for (i, cmd) in cmds.iter().enumerate() {
            self.transport
                .send_line(&format!("{}{cmd}", first + i as u64))?;
        }
        let mut slots: Vec<Option<(ResultClass, BTreeMap<String, MiValue>)>> =
            cmds.iter().map(|_| None).collect();
        let mut prompts = 0;
        while prompts < cmds.len() {
            let line = self.transport.recv_line()?;
            match parse_line(&line)? {
                Record::Prompt => prompts += 1,
                Record::Result {
                    token,
                    class,
                    results,
                } => match token {
                    Some(t) if (first..first + cmds.len() as u64).contains(&t) => {
                        slots[(t - first) as usize] = Some((class, results));
                    }
                    Some(_) => {}
                    // An untokened result belongs to the oldest command
                    // still awaiting its answer (MI replies in order).
                    None => {
                        if let Some(slot) = slots.iter_mut().find(|s| s.is_none()) {
                            *slot = Some((class, results));
                        }
                    }
                },
                Record::Stream { kind: '~', text } => {
                    self.console.push_str(&text);
                }
                Record::Stream { kind: '@', text } => {
                    self.target_out.push_str(&text);
                }
                Record::Stream { .. } => {}
                r @ Record::Async { .. } => {
                    self.async_events.push(r);
                }
            }
        }
        Ok(slots
            .into_iter()
            .map(|slot| match slot {
                Some((ResultClass::Error, results)) => {
                    let msg = results
                        .get("msg")
                        .and_then(|v| v.as_str())
                        .unwrap_or("unknown error")
                        .to_string();
                    Err(MiError::ErrorRecord(msg))
                }
                Some((_, results)) => Ok(results),
                None => Err(MiError::Disconnected),
            })
            .collect())
    }

    /// Takes the accumulated target output.
    pub fn take_target_out(&mut self) -> String {
        std::mem::take(&mut self.target_out)
    }

    /// The underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutable access to the underlying transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted transport replaying canned responses.
    struct Script {
        sent: Vec<String>,
        responses: Vec<Vec<String>>,
    }

    impl MiTransport for Script {
        fn send_line(&mut self, line: &str) -> Result<(), MiError> {
            self.sent.push(line.to_string());
            Ok(())
        }

        fn recv_line(&mut self) -> Result<String, MiError> {
            if self.responses.is_empty() {
                return Err(MiError::Disconnected);
            }
            let batch = &mut self.responses[0];
            let line = batch.remove(0);
            if batch.is_empty() {
                self.responses.remove(0);
            }
            Ok(line)
        }
    }

    #[test]
    fn correlates_tokens_and_collects_streams() {
        let script = Script {
            sent: Vec::new(),
            responses: vec![vec![
                "~\"console noise\\n\"".to_string(),
                "@\"hello from target\"".to_string(),
                "1^done,value=\"42\"".to_string(),
                "(gdb)".to_string(),
            ]],
        };
        let mut c = MiClient::new(script);
        let r = c.execute("-data-evaluate-expression \"42\"").unwrap();
        assert_eq!(r.get("value").unwrap().as_str(), Some("42"));
        assert_eq!(c.console, "console noise\n");
        assert_eq!(c.take_target_out(), "hello from target");
        assert_eq!(c.take_target_out(), "");
    }

    #[test]
    fn error_records_become_errors() {
        let script = Script {
            sent: Vec::new(),
            responses: vec![vec![
                "1^error,msg=\"No symbol\"".to_string(),
                "(gdb)".to_string(),
            ]],
        };
        let mut c = MiClient::new(script);
        match c.execute("-duel-symbol-info zz") {
            Err(MiError::ErrorRecord(m)) => {
                assert_eq!(m, "No symbol")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_pipelines_sends_then_correlates_by_token() {
        let script = Script {
            sent: Vec::new(),
            responses: vec![vec![
                "1^done,value=\"a\"".to_string(),
                "(gdb)".to_string(),
                "2^error,msg=\"Cannot access memory\"".to_string(),
                "(gdb)".to_string(),
                "3^done,value=\"c\"".to_string(),
                "(gdb)".to_string(),
            ]],
        };
        let mut c = MiClient::new(script);
        let rs = c
            .execute_batch(&["-cmd-a".into(), "-cmd-b".into(), "-cmd-c".into()])
            .unwrap();
        // All three lines went out before any reply was read.
        assert_eq!(c.transport().sent, vec!["1-cmd-a", "2-cmd-b", "3-cmd-c"]);
        assert_eq!(
            rs[0].as_ref().unwrap().get("value").unwrap().as_str(),
            Some("a")
        );
        assert!(matches!(&rs[1], Err(MiError::ErrorRecord(m)) if m.contains("Cannot access")));
        assert_eq!(
            rs[2].as_ref().unwrap().get("value").unwrap().as_str(),
            Some("c")
        );
    }

    #[test]
    fn async_events_are_kept() {
        let script = Script {
            sent: Vec::new(),
            responses: vec![vec![
                "*stopped,reason=\"breakpoint-hit\"".to_string(),
                "1^done".to_string(),
                "(gdb)".to_string(),
            ]],
        };
        let mut c = MiClient::new(script);
        c.execute("-exec-continue").unwrap();
        assert_eq!(c.async_events.len(), 1);
    }
}
