//! Parser robustness against a corpus of authentic gdb/MI output, drawn
//! from the shapes documented in the gdb manual ("GDB/MI Output Syntax",
//! "GDB/MI Breakpoint Commands", …) and typical gdb 7–13 sessions.

use duel_gdbmi::{parse_line, MiValue, Record, ResultClass};

const CORPUS: &[&str] = &[
    // Result records.
    r#"^done"#,
    r#"^running"#,
    r#"^connected"#,
    r#"^exit"#,
    r#"4^done,value="4""#,
    r#"^done,value="0x00010734 \"a string\"""#,
    r#"211^done,value="0xefbfeb7c""#,
    r#"^error,msg="Undefined MI command: rubbish""#,
    r#"^error,msg="No symbol \"xyz\" in current context.""#,
    // Breakpoint machinery.
    r#"^done,bkpt={number="1",type="breakpoint",disp="keep",enabled="y",addr="0x000100d0",func="main",file="hello.c",fullname="/home/foo/hello.c",line="5",thread-groups=["i1"],times="0"}"#,
    r#"=breakpoint-modified,bkpt={number="1",type="breakpoint",disp="keep",enabled="y",addr="0x08048564",func="main",file="myprog.c",line="68",times="1"}"#,
    // Async exec records.
    r#"*running,thread-id="all""#,
    r#"*stopped,reason="breakpoint-hit",disp="keep",bkptno="1",thread-id="0",frame={addr="0x08048564",func="main",args=[{name="argc",value="1"},{name="argv",value="0xbfc4d4d4"}],file="myprog.c",fullname="/home/nickrob/myprog.c",line="68"}"#,
    r#"*stopped,reason="exited-normally""#,
    r#"*stopped,reason="exited",exit-code="01""#,
    r#"*stopped,reason="signal-received",signal-name="SIGINT",signal-meaning="Interrupt""#,
    // Notify records.
    r#"=thread-group-added,id="i1""#,
    r#"=thread-created,id="1",group-id="i1""#,
    r#"=library-loaded,id="/lib/ld.so",target-name="/lib/ld.so",host-name="/lib/ld.so",symbols-loaded="0",thread-group="i1""#,
    // Status records.
    r#"+download,{section=".text",section-size="6668",total-size="9880"}"#,
    // Stream records.
    r#"~"GNU gdb (GDB) 13.2\n""#,
    r#"~"Reading symbols from /bin/true...\n""#,
    r#"&"warning: core file may not match executable\n""#,
    r#"@"Hello from the inferior\n""#,
    // Stack and variable shapes.
    r#"^done,stack=[frame={level="0",addr="0x0001076c",func="callee4",file="r.c",line="8"},frame={level="1",addr="0x000107a4",func="callee3",file="r.c",line="17"}]"#,
    r#"^done,locals=[name="A",name="B",name="C""#,
    r#"^done,variables=[{name="x",value="11"},{name="s",value="{a = 1, b = 2}"}]"#,
    r#"^done,memory=[{begin="0x00001390",offset="0x00000000",end="0x00001396",contents="00000000000000"}]"#,
    r#"^done,asm_insns=[{address="0x000107c0",func-name="main",offset="4",inst="mov  2, %o0"}]"#,
    // Empty containers and prompt.
    r#"^done,groups=[]"#,
    r#"(gdb)"#,
];

#[test]
fn corpus_parses_or_fails_cleanly() {
    // One entry above is deliberately malformed (unclosed `locals`
    // list) to check errors stay errors rather than panicking.
    let mut ok = 0;
    let mut failed = Vec::new();
    for line in CORPUS {
        match parse_line(line) {
            Ok(_) => ok += 1,
            Err(_) => failed.push(*line),
        }
    }
    assert_eq!(
        failed,
        vec![r#"^done,locals=[name="A",name="B",name="C""#],
        "unexpected parse failures"
    );
    assert_eq!(ok, CORPUS.len() - 1);
}

#[test]
fn stopped_record_round_trips_structure() {
    let r = parse_line(
        r#"*stopped,reason="breakpoint-hit",disp="keep",bkptno="1",frame={addr="0x08048564",func="main",args=[{name="argc",value="1"}],line="68"}"#,
    )
    .unwrap();
    match r {
        Record::Async { class, results, .. } => {
            assert_eq!(class, "stopped");
            let frame = results.get("frame").unwrap();
            assert_eq!(frame.get_str("func"), Some("main"));
            let args = frame.get("args").unwrap();
            assert_eq!(args.items().len(), 1);
            assert_eq!(args.items()[0].get_str("name"), Some("argc"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn escaped_strings_decode() {
    let r = parse_line(r#"~"a \"quoted\" word\tand tab\n""#).unwrap();
    match r {
        Record::Stream { text, .. } => {
            assert_eq!(text, "a \"quoted\" word\tand tab\n")
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn result_class_distinctions() {
    for (line, class) in [
        ("^done", ResultClass::Done),
        ("^running", ResultClass::Running),
        ("^connected", ResultClass::Connected),
        ("^exit", ResultClass::Exit),
        (r#"^error,msg="m""#, ResultClass::Error),
    ] {
        match parse_line(line).unwrap() {
            Record::Result { class: c, .. } => assert_eq!(c, class),
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn download_status_record() {
    // `+download` carries an *unnamed* tuple — a quirk of real gdb
    // output; unnamed values are filed under numeric keys.
    let r =
        parse_line(r#"+download,{section=".text",section-size="6668",total-size="9880"}"#).unwrap();
    match r {
        Record::Async { kind, results, .. } => {
            assert_eq!(kind, '+');
            let t = results.get("0").unwrap();
            assert_eq!(t.get_str("section-size"), Some("6668"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn deeply_nested_values() {
    let r = parse_line(r#"^done,a=[{b=[{c="1"},{c="2"}],d={e=["x","y"]}}]"#).unwrap();
    match r {
        Record::Result { results, .. } => {
            let a = results.get("a").unwrap();
            let first = &a.items()[0];
            let b = first.get("b").unwrap();
            assert_eq!(b.items()[1].get_str("c"), Some("2"));
            let d = first.get("d").unwrap();
            match d.get("e").unwrap() {
                MiValue::List(v) => assert_eq!(v.len(), 2),
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
}
