//! Deep coverage of the mini-C substrate: the compiler + VM must be
//! trustworthy enough that debugging sessions over it are meaningful.
//! Each test runs a complete program and checks its exit code, its
//! output, or the memory it leaves behind.

use duel::minic::{Debugger, StopReason};
use duel::target::Target;

fn run_exit(src: &str) -> i64 {
    let mut d = Debugger::new(src).unwrap_or_else(|e| panic!("compile failed: {e}"));
    match d.run().unwrap_or_else(|e| panic!("run failed: {e}")) {
        StopReason::Exited { code } => code,
        other => panic!("did not exit: {other:?}"),
    }
}

fn run_output(src: &str) -> String {
    let mut d = Debugger::new(src).unwrap_or_else(|e| panic!("compile failed: {e}"));
    d.run().unwrap_or_else(|e| panic!("run failed: {e}"));
    d.take_output()
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run_exit("int main() { return 2 + 3 * 4; }"), 14);
    assert_eq!(run_exit("int main() { return (2 + 3) * 4; }"), 20);
    assert_eq!(run_exit("int main() { return 17 % 5; }"), 2);
    assert_eq!(run_exit("int main() { return 1 << 6 >> 2; }"), 16);
    assert_eq!(run_exit("int main() { return -7 / 2; }"), -3);
    assert_eq!(run_exit("int main() { return (5 & 3) | (4 ^ 12); }"), 9);
}

#[test]
fn short_circuit_evaluation() {
    // The right operand must not run when short-circuited.
    let src = "\
int hits;\n\
int bump() { hits = hits + 1; return 1; }\n\
int main() {\n\
    int a;\n\
    a = 0 && bump();\n\
    a = 1 || bump();\n\
    return hits;\n\
}\n";
    assert_eq!(run_exit(src), 0);
}

#[test]
fn comparison_chains_and_ternary() {
    assert_eq!(run_exit("int main() { return 3 < 4 ? 10 : 20; }"), 10);
    assert_eq!(run_exit("int main() { int x = 5; return x == 5; }"), 1);
}

#[test]
fn loops_break_continue() {
    let src = "\
int main() {\n\
    int i, sum;\n\
    sum = 0;\n\
    for (i = 0; i < 100; i++) {\n\
        if (i % 2) continue;\n\
        if (i >= 20) break;\n\
        sum = sum + i;\n\
    }\n\
    return sum;\n\
}\n";
    // 0+2+4+…+18 = 90.
    assert_eq!(run_exit(src), 90);
}

#[test]
fn do_while_runs_at_least_once() {
    let src = "\
int main() {\n\
    int n = 0;\n\
    do { n = n + 1; } while (0);\n\
    return n;\n\
}\n";
    assert_eq!(run_exit(src), 1);
}

#[test]
fn nested_function_calls_and_params() {
    let src = "\
int max(int a, int b) { return a > b ? a : b; }\n\
int clamp(int v, int lo, int hi) {\n\
    return max(lo, v < hi ? v : hi);\n\
}\n\
int main() { return clamp(42, 0, 10) + clamp(-5, 0, 10); }\n";
    assert_eq!(run_exit(src), 10);
}

#[test]
fn recursion_ackermann_small() {
    let src = "\
int ack(int m, int n) {\n\
    if (m == 0) return n + 1;\n\
    if (n == 0) return ack(m - 1, 1);\n\
    return ack(m - 1, ack(m, n - 1));\n\
}\n\
int main() { return ack(2, 3); }\n";
    assert_eq!(run_exit(src), 9);
}

#[test]
fn pointers_and_swap() {
    let src = "\
int swap(int *a, int *b) {\n\
    int t;\n\
    t = *a; *a = *b; *b = t;\n\
    return 0;\n\
}\n\
int main() {\n\
    int x = 3, y = 4;\n\
    swap(&x, &y);\n\
    return x * 10 + y;\n\
}\n";
    assert_eq!(run_exit(src), 43);
}

#[test]
fn arrays_and_pointer_walks() {
    let src = "\
int a[8];\n\
int main() {\n\
    int i, sum;\n\
    int *p;\n\
    for (i = 0; i < 8; i++) a[i] = i * i;\n\
    sum = 0;\n\
    for (p = a; p < a + 8; p++) sum = sum + *p;\n\
    return sum;\n\
}\n";
    // 0+1+4+…+49 = 140.
    assert_eq!(run_exit(src), 140);
}

#[test]
fn two_dimensional_arrays() {
    let src = "\
int m[3][4];\n\
int main() {\n\
    int i, j, sum;\n\
    for (i = 0; i < 3; i++)\n\
        for (j = 0; j < 4; j++)\n\
            m[i][j] = i * 10 + j;\n\
    sum = 0;\n\
    for (i = 0; i < 3; i++) sum = sum + m[i][3];\n\
    return sum + m[2][1];\n\
}\n";
    // m[0][3]+m[1][3]+m[2][3] = 3+13+23 = 39; +21 = 60.
    assert_eq!(run_exit(src), 60);
}

#[test]
fn structs_unions_typedefs() {
    let src = "\
typedef struct pt { int x; int y; } Point;\n\
union both { int i; unsigned u; };\n\
Point corner;\n\
union both b;\n\
int main() {\n\
    Point local;\n\
    local.x = 3; local.y = 4;\n\
    corner = local;          /* struct assignment unsupported */\n\
    return 0;\n\
}\n";
    // Struct assignment is documented as unsupported: compile error.
    assert!(Debugger::new(src).is_err());

    let src2 = "\
typedef struct pt { int x; int y; } Point;\n\
Point corner;\n\
int main() {\n\
    corner.x = 3; corner.y = 4;\n\
    return corner.x * 10 + corner.y;\n\
}\n";
    assert_eq!(run_exit(src2), 34);
}

#[test]
fn bitfields_in_c() {
    let src = "\
struct flags { unsigned a : 3; unsigned b : 5; unsigned c : 8; };\n\
struct flags f;\n\
int main() {\n\
    f.a = 5; f.b = 17; f.c = 200;\n\
    f.a = f.a + 2;\n\
    return f.a + f.b + f.c;\n\
}\n";
    assert_eq!(run_exit(src), 7 + 17 + 200);
}

#[test]
fn enums_in_c() {
    let src = "\
enum state { IDLE, BUSY = 5, DONE };\n\
int main() {\n\
    enum state s;\n\
    s = DONE;\n\
    return s + IDLE + BUSY;\n\
}\n";
    assert_eq!(run_exit(src), 11);
}

#[test]
fn char_arithmetic_and_strings() {
    let src = "\
char *msg = \"hello\";\n\
int main() {\n\
    return msg[0] + msg[4] - 'a';\n\
}\n";
    assert_eq!(run_exit(src), ('h' as i64) + ('o' as i64) - ('a' as i64));
    assert_eq!(
        run_output(
            "int main() { printf(\"len=%d\\n\", strlen(\"four\")); \
             return 0; }"
        ),
        "len=4\n"
    );
}

#[test]
fn unsigned_wraparound_in_c() {
    let src = "\
int main() {\n\
    unsigned char c = 255;\n\
    c = c + 2;\n\
    return c;\n\
}\n";
    assert_eq!(run_exit(src), 1);
    assert_eq!(
        run_exit(
            "int main() { unsigned u = 0; u = u - 1; \
             return u > 1000; }"
        ),
        1
    );
}

#[test]
fn float_computation() {
    let src = "\
int main() {\n\
    double s;\n\
    int i;\n\
    s = 0.0;\n\
    for (i = 1; i <= 10; i++) s = s + 1.0 / i;\n\
    return (int)(s * 1000.0);\n\
}\n";
    // H(10) ≈ 2.928968…
    assert_eq!(run_exit(src), 2928);
}

#[test]
fn comma_and_compound_assignment() {
    let src = "\
int main() {\n\
    int a = 1, b = 2;\n\
    a += 5; b *= 3;\n\
    a <<= 1, b -= 1;\n\
    return a * 100 + b;\n\
}\n";
    assert_eq!(run_exit(src), 1205);
}

#[test]
fn scope_shadowing() {
    let src = "\
int x = 1;\n\
int main() {\n\
    int x = 2;\n\
    {\n\
        int x = 3;\n\
        if (x != 3) return 100;\n\
    }\n\
    return x;\n\
}\n";
    assert_eq!(run_exit(src), 2);
}

#[test]
fn printf_formats() {
    let out = run_output(
        "int main() { \
           printf(\"%d|%u|%x|%c|%s|%5d|%-3d|\", \
                  -7, 7, 255, 'Z', \"str\", 42, 1); \
           return 0; }",
    );
    assert_eq!(out, "-7|7|ff|Z|str|   42|1  |");
}

#[test]
fn malloc_builds_reachable_graphs() {
    let src = "\
struct node { int v; struct node *l; struct node *r; };\n\
struct node *root;\n\
struct node *mk(int v) {\n\
    struct node *n;\n\
    n = (struct node *)malloc(sizeof(struct node));\n\
    n->v = v; n->l = 0; n->r = 0;\n\
    return n;\n\
}\n\
int sum(struct node *n) {\n\
    if (!n) return 0;\n\
    return n->v + sum(n->l) + sum(n->r);\n\
}\n\
int main() {\n\
    root = mk(1);\n\
    root->l = mk(2);\n\
    root->r = mk(3);\n\
    root->l->l = mk(4);\n\
    return sum(root);\n\
}\n";
    assert_eq!(run_exit(src), 10);
}

#[test]
fn division_by_zero_is_a_runtime_error() {
    let mut d = Debugger::new("int main() { int z = 0; return 7 / z; }").unwrap();
    assert!(d.run().is_err());
}

#[test]
fn infinite_loop_hits_fuel_limit() {
    let mut d = Debugger::new("int main() { for (;;) ; return 0; }").unwrap();
    d.vm_mut().fuel = 100_000;
    assert!(matches!(d.run(), Err(duel::minic::VmError::OutOfFuel)));
}

#[test]
fn null_deref_is_a_memory_error() {
    let mut d = Debugger::new("int main() { int *p; p = 0; return *p; }").unwrap();
    assert!(d.run().is_err());
}

#[test]
fn globals_visible_after_exit() {
    let src = "\
int total;\n\
int main() {\n\
    int i;\n\
    for (i = 1; i <= 10; i++) total = total + i;\n\
    return 0;\n\
}\n";
    let mut d = Debugger::new(src).unwrap();
    d.run().unwrap();
    let total = d.get_variable("total").unwrap();
    let mut buf = [0u8; 4];
    d.get_bytes(total.addr, &mut buf).unwrap();
    assert_eq!(i32::from_le_bytes(buf), 55);
}

#[test]
fn switch_dispatch_and_fallthrough() {
    let src = "\
int classify(int v) {\n\
    int r;\n\
    r = 0;\n\
    switch (v) {\n\
    case 1:\n\
        r = 10;\n\
        break;\n\
    case 2:          /* falls through to 3 */\n\
    case 3:\n\
        r = 23;\n\
        break;\n\
    default:\n\
        r = 99;\n\
    }\n\
    return r;\n\
}\n\
int main() {\n\
    return classify(1) * 1000000 + classify(2) * 10000\n\
         + classify(3) * 100 + classify(7);\n\
}\n";
    assert_eq!(run_exit(src), 10 * 1000000 + 23 * 10000 + 23 * 100 + 99);
}

#[test]
fn switch_without_default_skips() {
    let src = "\
int main() {\n\
    int r = 5;\n\
    switch (42) {\n\
    case 1: r = 1; break;\n\
    case 2: r = 2; break;\n\
    }\n\
    return r;\n\
}\n";
    assert_eq!(run_exit(src), 5);
}

#[test]
fn switch_on_enumerators_and_break_scoping() {
    let src = "\
enum op { ADD, SUB = 10, MUL };\n\
int apply(int op, int a, int b) {\n\
    switch (op) {\n\
    case ADD: return a + b;\n\
    case SUB: return a - b;\n\
    case MUL: return a * b;\n\
    }\n\
    return -1;\n\
}\n\
int main() {\n\
    int i, total;\n\
    total = 0;\n\
    /* break inside switch must not break the for loop */\n\
    for (i = 0; i < 3; i++) {\n\
        switch (i) {\n\
        case 0: total += apply(ADD, 7, 2); break;\n\
        case 1: total += apply(SUB, 7, 2); break;\n\
        case 2: total += apply(MUL, 7, 2); break;\n\
        }\n\
    }\n\
    return total;\n\
}\n";
    assert_eq!(run_exit(src), 9 + 5 + 14);
}

#[test]
fn switch_fallthrough_counts_duel_visible() {
    // A switch-built histogram the DUEL session can then query.
    let src = "\
int histo[4];\n\
int main() {\n\
    int i;\n\
    for (i = 0; i < 12; i++) {\n\
        switch (i % 4) {\n\
        case 0:\n\
        case 1:\n\
            histo[0]++;\n\
            break;\n\
        case 2:\n\
            histo[2]++;\n\
            break;\n\
        default:\n\
            histo[3]++;\n\
        }\n\
    }\n\
    return 0;\n\
}\n";
    let mut d = Debugger::new(src).unwrap();
    d.run().unwrap();
    let mut s = duel::core::Session::new(&mut d);
    assert_eq!(
        s.eval_lines("histo[..4]").unwrap(),
        vec![
            "histo[0] = 6",
            "histo[1] = 0",
            "histo[2] = 3",
            "histo[3] = 3"
        ]
    );
}
