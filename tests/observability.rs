//! PR-3 observability invariants: widened `EvalStats`, the profiler's
//! attribution guarantees, and their behaviour under fault composition.

use duel_core::{ProfileReport, Session};
use duel_target::{
    scenario, CacheConfig, CachedTarget, FaultConfig, FaultTarget, RetryPolicy, RetryTarget,
    Target, TraceTarget,
};

// ---------------------------------------------------------------------
// EvalStats widening
// ---------------------------------------------------------------------

#[test]
fn stats_reset_between_evaluations() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    s.eval("x[..50] >? 5").unwrap();
    let first = s.last_stats();
    assert!(first.ticks > 0);
    assert!(first.max_depth > 0);
    assert!(first.yields >= first.values);
    // A trivial follow-up command must not inherit any counter.
    s.eval("1+1").unwrap();
    let second = s.last_stats();
    assert_eq!(second.values, 1);
    assert!(second.ticks < first.ticks);
    assert_eq!(second.expansions, 0);
    assert!(second.yields < first.yields);
}

#[test]
fn expansions_count_structure_walks() {
    let mut t = scenario::hash_table_basic();
    let mut s = Session::new(&mut t);
    let lines = s.eval_lines("#/(hash[..1024]-->next)").unwrap();
    assert_eq!(lines.len(), 1);
    let stats = s.last_stats();
    assert!(stats.expansions > 0, "{stats:?}");
    // Each visited node is one expansion step; the walk visited at
    // least as many nodes as the reduction counted.
    let count: u64 = lines[0]
        .rsplit(' ')
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap();
    assert!(stats.expansions >= count, "{stats:?} vs count {count}");
}

#[test]
fn deeper_nesting_raises_max_depth() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    s.eval("1+1").unwrap();
    let shallow = s.last_stats().max_depth;
    s.eval("1+(2+(3+(4+(5+6))))").unwrap();
    let deep = s.last_stats().max_depth;
    assert!(deep > shallow, "{deep} vs {shallow}");
}

// ---------------------------------------------------------------------
// ProfileReport attribution
// ---------------------------------------------------------------------

fn assert_fully_attributed(report: &ProfileReport) {
    assert_eq!(
        report.attributed_ticks(),
        report.total_ticks,
        "every tick must be charged to exactly one node: {report:?}"
    );
    assert_eq!(
        report.attributed_reads(),
        report.total_reads,
        "every wire read must be charged to exactly one node: {report:?}"
    );
}

#[test]
fn profile_attributes_all_ticks_without_a_trace_layer() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    let (lines, err, report) = s.profile("x[..50] >? 5").unwrap();
    assert!(err.is_none());
    assert!(!lines.is_empty());
    assert_fully_attributed(&report);
    assert_eq!(report.total_ticks, s.last_stats().ticks);
    // Without a TraceTarget in the tower there is nothing to diff.
    assert_eq!(report.total_reads, 0);
    // Rows are keyed by symbolic text with the paper's operator names.
    assert!(
        report
            .nodes
            .iter()
            .any(|n| n.text == "x[..50]>?5" && n.label == "ifcmp"),
        "{report:?}"
    );
}

#[test]
fn profile_attributes_reads_through_a_traced_tower() {
    let mut t = TraceTarget::new(CachedTarget::with_config(
        scenario::scan_array(),
        CacheConfig::default(),
    ));
    let handle = t.handle();
    let mut s = Session::new(&mut t);
    let (_, err, report) = s.profile("x[..50] >? 5").unwrap();
    assert!(err.is_none());
    assert!(report.total_reads > 0, "the scan must touch the target");
    assert_fully_attributed(&report);
    // The ISSUE's acceptance bar, stated directly: ≥95% of reads are
    // attributed to nodes (we achieve exactly 100%).
    assert!(report.attributed_reads() * 100 >= report.total_reads * 95);
    // Value rendering reads are charged to the (display) pseudo-node.
    let display = report
        .nodes
        .iter()
        .find(|n| n.label == "display")
        .expect("display pseudo-node");
    assert!(display.self_reads > 0, "{display:?}");
    // Session::profile enables tracing only for its own duration.
    assert!(!handle.is_enabled());
}

#[test]
fn fault_composition_does_not_skew_counters() {
    // Clean run.
    let mut clean = TraceTarget::new(scenario::scan_array());
    let mut s = Session::new(&mut clean);
    let (clean_lines, err, clean_report) = s.profile("x[..50] >? 5").unwrap();
    assert!(err.is_none());

    // Same query through a transiently failing backend healed by
    // retry: identical output, identical tick accounting — transient
    // faults are absorbed below the evaluator, so they must not leak
    // into its counters.
    let flaky = RetryTarget::with_policy(
        FaultTarget::new(scenario::scan_array(), FaultConfig::transient(3)),
        RetryPolicy::fast(5),
    );
    let mut flaky = TraceTarget::new(flaky);
    let mut s = Session::new(&mut flaky);
    let (flaky_lines, err, flaky_report) = s.profile("x[..50] >? 5").unwrap();
    assert!(err.is_none());

    assert_eq!(clean_lines, flaky_lines);
    assert_eq!(clean_report.total_ticks, flaky_report.total_ticks);
    assert_fully_attributed(&flaky_report);
    // Per-node tick charges line up too (reads may differ: the trace
    // layer sits above retry here, so it sees the same successful
    // calls either way, but we only require ticks to be identical).
    for (c, f) in clean_report.nodes.iter().zip(flaky_report.nodes.iter()) {
        assert_eq!(c.text, f.text);
        assert_eq!(c.self_ticks, f.self_ticks, "node {}", c.text);
        assert_eq!(c.resumptions, f.resumptions, "node {}", c.text);
    }
}

#[test]
fn profile_stays_balanced_across_evaluation_errors() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    s.options.max_values = 5;
    let (lines, err, report) = s.profile("x[..50]").unwrap();
    assert!(err.is_some(), "the value limit must trip");
    assert_eq!(lines.len(), 5);
    // Even with the evaluation aborted mid-stream, every opened span
    // closed and the accounting still partitions the tick total.
    assert_fully_attributed(&report);
}

#[test]
fn hottest_orders_by_self_ticks() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    let (_, _, report) = s.profile("x[..50] >? 5").unwrap();
    let hot = report.hottest();
    for pair in hot.windows(2) {
        assert!(pair[0].self_ticks >= pair[1].self_ticks);
    }
    let table = report.render_table(5);
    assert!(table.contains("attributed: 100.0% of ticks"), "{table}");
}

// ---------------------------------------------------------------------
// Tower discovery
// ---------------------------------------------------------------------

#[test]
fn trace_handle_is_discoverable_through_the_full_tower() {
    let t = TraceTarget::new(RetryTarget::with_policy(
        CachedTarget::with_config(scenario::scan_array(), CacheConfig::default()),
        RetryPolicy::fast(2),
    ));
    let outer = t.handle();
    let via_trait: &dyn Target = &t;
    let found = via_trait.trace_handle().expect("handle through dyn Target");
    found.set_enabled(true);
    assert!(outer.is_enabled(), "both must alias the same counters");
}

// ---------------------------------------------------------------------
// PR-8: causal span tracing
// ---------------------------------------------------------------------

use duel_target::{attribution_coverage, SpanKind};

/// Builds the standard traced tower and runs one span-traced eval.
fn traced_eval(expr: &str) -> duel_target::TraceTarget<CachedTarget<duel_target::SimTarget>> {
    let t = TraceTarget::new(CachedTarget::with_config(
        scenario::scan_array(),
        CacheConfig::default(),
    ));
    t.handle().set_enabled(true);
    t.spans().set_enabled(true);
    let mut t = t;
    let mut s = Session::new(&mut t);
    s.eval(expr).unwrap();
    t
}

#[test]
fn spans_attribute_every_wire_event_through_the_tower() {
    let t = traced_eval("x[..50] >? 5");
    let snap = t.spans().snapshot();
    let events = t.handle().recent_events(usize::MAX);
    let (ok, total) = attribution_coverage(&snap, &events);
    assert!(total > 0, "the scan must touch the wire");
    assert_eq!(ok, total, "every event must chain to the eval root");
    assert!(snap.open.is_empty(), "span stack balanced after eval");
    // The chain shape is eval → node*|display → wire op: every memory
    // read is caused either by a generator (Node span) or by value
    // rendering (Display span, the profiler's display pseudo-node).
    // Symbol and type lookups fire during *parsing* and attribute
    // straight to the eval root — there is no generator running yet.
    for e in events
        .iter()
        .filter(|e| matches!(e.op.name(), "get_bytes" | "get_bytes_multi"))
    {
        let chain = snap.ancestry(e.span).unwrap();
        assert!(
            chain
                .iter()
                .any(|r| matches!(r.kind, SpanKind::Node | SpanKind::Display)),
            "event {e:?} skipped the evaluator"
        );
    }
}

/// The reset audit (ISSUE-8 satellite): `.trace clear` and backend
/// swaps must drop counters, histograms, the event ring, and the span
/// ring *together* — a clear that leaves old latency buckets behind
/// would silently skew every later percentile.
#[test]
fn clear_leaves_no_stale_latency_buckets_or_spans() {
    let t = traced_eval("x[..50] >? 5");
    let before = t.handle().snapshot();
    assert!(before.total_calls() > 0);
    assert!(
        before.ops.iter().any(|o| o.hist.iter().any(|&b| b > 0)),
        "expected hot latency buckets before the clear"
    );
    assert!(!t.spans().snapshot().spans.is_empty());

    t.handle().clear();
    t.spans().clear();

    let after = t.handle().snapshot();
    assert_eq!(after.total_calls(), 0);
    assert_eq!(after.events_held, 0);
    for o in &after.ops {
        assert!(
            o.hist.iter().all(|&b| b == 0),
            "stale latency buckets survived the clear for {}",
            o.op.name()
        );
        assert_eq!((o.calls, o.errors, o.total_ns), (0, 0, 0));
    }
    let spans = t.spans().snapshot();
    assert!(spans.spans.is_empty() && spans.open.is_empty());
    assert_eq!(spans.dropped, 0);
    // Enablement is state, not statistics: a clear must not turn
    // collection off.
    assert!(t.handle().is_enabled());
    assert!(t.spans().is_enabled());
}

/// Profiling and span tracing are one seam (`TraceGen`): every node
/// the profiler charges must appear as a `Node` span with the same
/// operator label, because both views fold the same enter/exit stream.
#[test]
fn profile_nodes_and_node_spans_agree() {
    let mut t = TraceTarget::new(CachedTarget::with_config(
        scenario::scan_array(),
        CacheConfig::default(),
    ));
    t.spans().set_enabled(true);
    let spans = t.spans();
    let mut s = Session::new(&mut t);
    let (_, err, report) = s.profile("x[..50] >? 5").unwrap();
    assert!(err.is_none());
    let snap = spans.snapshot();
    for node in report.nodes.iter().filter(|n| n.label != "display") {
        assert!(
            snap.spans
                .iter()
                .any(|r| r.kind == SpanKind::Node && r.name == node.label),
            "profiled node `{}` ({}) has no Node span",
            node.text,
            node.label
        );
    }
    // The display pseudo-node maps to the Display span kind.
    assert!(snap.spans.iter().any(|r| r.kind == SpanKind::Display));
}

// ---------------------------------------------------------------------
// Self-hosted introspection: `.query` vs the fixed views
// ---------------------------------------------------------------------

/// Runs lines through a fresh REPL and returns the combined output.
fn repl_run(r: &mut duel_cli::Repl, line: &str) -> String {
    let mut out = String::new();
    r.handle(line, &mut out);
    out
}

/// The meta-query differential: the counter table `.top` renders and
/// the span aggregates it derives must byte-agree with the same
/// numbers read back through `.query` over the synthetic meta image.
#[test]
fn meta_queries_agree_with_the_top_table() {
    let mut r = duel_cli::Repl::new();
    repl_run(&mut r, ".trace on");
    repl_run(&mut r, ".trace spans on");
    repl_run(&mut r, "x[..20] >? 5");
    repl_run(&mut r, "hash[..10].scope");

    // Rebuild the counter table from two meta-queries...
    let names = repl_run(&mut r, ".query counters[..ncounters].name");
    let values = repl_run(&mut r, ".query counters[..ncounters].value");
    let mut table: Vec<(String, u64)> = Vec::new();
    for (n, v) in names.lines().zip(values.lines()) {
        let name = n
            .split(" = ")
            .nth(1)
            .and_then(|s| s.strip_prefix('"'))
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or_else(|| panic!("unexpected name line `{n}`"));
        let value: u64 = v
            .split(" = ")
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unexpected value line `{v}`"));
        table.push((name.to_string(), value));
    }
    // ...and it must equal the registry snapshot `.top` renders from,
    // byte for byte.
    let snap = r.meta_snapshot();
    assert_eq!(table, snap.metrics.counters);

    // Every counter row `.top` actually prints appears in the
    // query-derived table with the same value.
    let top = repl_run(&mut r, ".top");
    // `.top` itself must not perturb the comparison below.
    let in_counters = top
        .lines()
        .skip_while(|l| !l.contains("busiest counters:"))
        .skip(1)
        .take_while(|l| l.starts_with("    "));
    let mut rows = 0;
    for line in in_counters {
        let mut it = line.split_whitespace();
        let (Some(name), Some(value)) = (it.next(), it.next()) else {
            panic!("unparseable .top counter row `{line}`");
        };
        let v: u64 = value.parse().expect("counter value");
        assert_eq!(
            table.iter().find(|(n, _)| n == name).map(|(_, x)| *x),
            Some(v),
            ".top row `{line}` disagrees with the meta-query table"
        );
        rows += 1;
    }
    assert!(rows > 0, "no counter rows in .top output:\n{top}");

    // Span aggregates: total count and total exclusive time derived
    // by `.query` equal the ring snapshot's aggregation inputs.
    let count = repl_run(&mut r, ".query #/(spans[..nspans].id)");
    let n: usize = count.trim().parse().expect("span count");
    assert_eq!(n, snap.spans.spans.len() + snap.spans.open.len());

    let self_sum = repl_run(&mut r, ".query +/(spans[..nspans].self_ns)");
    let q: u64 = self_sum.trim().parse().expect("self_ns sum");
    let agg: u64 = snap.spans.aggregate().iter().map(|a| a.self_ns).sum();
    assert_eq!(q, agg, "exclusive-time attribution diverged");
}
