//! Experiment E8: the Introduction's motivating query — "does list L
//! contain two identical elements in its value fields?"
//!
//! The paper gives C code for it and notes: "The longer C code hides a
//! bug: the initialization of the inner for loop should be
//! q = p->next." Because DUEL accepts C statements, we can run the
//! paper's *exact* buggy code, observe the spurious self-matches, run
//! the corrected code, and compare with the DUEL one-liners.

use duel::core::{OutputLine, Session};
use duel::target::{scenario, Target};

fn stdout_lines(t: &mut dyn Target, src: &str) -> Vec<String> {
    let mut s = Session::new(t);
    let out = s
        .eval(src)
        .unwrap_or_else(|e| panic!("`{src}` failed: {e}"));
    let mut text = String::new();
    for l in out {
        if let OutputLine::Stdout(chunk) = l {
            text.push_str(&chunk);
        }
    }
    text.lines().map(|l| l.to_string()).collect()
}

/// The paper's C code, verbatim modulo the declaration style (our list
/// type is `struct list`).
const BUGGY_C: &str = "\
struct list *p, *q; \
for (p = L; p; p = p->next) \
    for (q = p; q; q = q->next) \
        if (p->value == q->value) \
            printf(\"%x %x contain %d\\n\", p, q, p->value);";

/// The corrected inner initialization.
const FIXED_C: &str = "\
struct list *p, *q; \
for (p = L; p; p = p->next) \
    for (q = p->next; q; q = q->next) \
        if (p->value == q->value) \
            printf(\"%x %x contain %d\\n\", p, q, p->value);";

#[test]
fn buggy_c_self_matches_every_node() {
    let mut t = scenario::linked_lists();
    let out = stdout_lines(&mut t, BUGGY_C);
    // 12 self-matches (q starts at p) plus the one real duplicate.
    assert_eq!(out.len(), 13, "{out:#?}");
    let dups: Vec<&String> = out.iter().filter(|l| l.contains("contain 27")).collect();
    // 27 appears twice as a self-match and once as the true pair.
    assert_eq!(dups.len(), 3);
}

#[test]
fn fixed_c_finds_exactly_the_duplicate() {
    let mut t = scenario::linked_lists();
    let out = stdout_lines(&mut t, FIXED_C);
    assert_eq!(out.len(), 1, "{out:#?}");
    assert!(out[0].ends_with("contain 27"), "{}", out[0]);
}

#[test]
fn duel_one_liner_is_correct_by_construction() {
    // The paper's compact form: each node's value compared against the
    // values of its successors only — no self-match bug possible.
    let mut t = scenario::linked_lists();
    let mut s = Session::new(&mut t);
    let out = s
        .eval_lines("L-->next->(value ==? next-->next->value)")
        .unwrap();
    assert_eq!(out, vec!["L-->next[[4]]->value = 27"]);
}

#[test]
fn duel_index_alias_form_reports_both_positions() {
    let mut t = scenario::linked_lists();
    let mut s = Session::new(&mut t);
    let out = s
        .eval_lines(
            "L-->next#i->value ==? L-->next#j->value => \
             if (i < j) L-->next[[i,j]]->value",
        )
        .unwrap();
    assert_eq!(
        out,
        vec!["L-->next[[4]]->value = 27", "L-->next[[9]]->value = 27"]
    );
}

#[test]
fn expression_length_comparison() {
    // The paper's point is concision: the one-liner is a fraction of
    // the C code's length.
    let one_liner = "L-->next->(value ==? next-->next->value)";
    assert!(one_liner.len() * 3 < BUGGY_C.len());
}
