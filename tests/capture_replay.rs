//! Flight-recorder invariants: capturing a session at the `Target`
//! seam and replaying it — strictly (byte-identical, symbolic
//! divergence reports) or permissively (new expressions over the
//! frozen recorded state) — plus capture behaviour under fault
//! injection and the gdbmi transport-level Recorder/Replayer
//! round-trip it complements.

use duel::core::Session;
use duel::gdbmi::{MiTarget, MockGdb, Recorder, Replayer};
use duel::target::{
    scenario, CacheConfig, CachedTarget, Capture, FaultConfig, FaultTarget, RecordTarget,
    ReplayMode, ReplayTarget, RetryPolicy, RetryTarget, SharedSink, SimTarget, Target, TargetError,
    TraceOutcome,
};
use proptest::prelude::*;

/// Evaluates `exprs` through the production tower shape with the
/// recorder armed below the cache; returns the rendered output of each
/// expression and the finalized capture text.
fn record_session(sim: SimTarget, label: &str, exprs: &[&str]) -> (Vec<Vec<String>>, String) {
    let sink = SharedSink::default();
    let mut rec = RecordTarget::new(sim);
    rec.start(Box::new(sink.clone()), "sim", label).unwrap();
    let mut t = CachedTarget::with_config(rec, CacheConfig::default());
    let mut outs = Vec::new();
    {
        let mut s = Session::new(&mut t);
        for e in exprs {
            outs.push(s.eval_lines(e).unwrap_or_else(|err| vec![err.to_string()]));
        }
    }
    t.inner_mut().stop().unwrap();
    (outs, sink.contents())
}

/// Replays `exprs` strictly over the capture, behind an identically
/// configured cold cache. Returns the outputs plus (consumed, total,
/// divergence) from the replay layer.
#[allow(clippy::type_complexity)]
fn replay_session(text: &str, exprs: &[&str]) -> (Vec<Vec<String>>, usize, usize, Option<String>) {
    let cap = Capture::parse(text).expect("parse capture");
    let mut t = CachedTarget::with_config(
        ReplayTarget::from_capture(cap, ReplayMode::Strict),
        CacheConfig::default(),
    );
    let mut outs = Vec::new();
    {
        let mut s = Session::new(&mut t);
        for e in exprs {
            outs.push(s.eval_lines(e).unwrap_or_else(|err| vec![err.to_string()]));
        }
    }
    let r = t.inner();
    (
        outs,
        r.events_consumed(),
        r.events_total(),
        r.divergence().map(|d| d.render()),
    )
}

// ---------------------------------------------------------------------
// Strict replay fidelity
// ---------------------------------------------------------------------

#[test]
fn strict_replay_of_a_combined_session_is_byte_identical() {
    // A spread of the paper's worked examples, with one expression
    // evaluated twice: the second run is served from the page cache,
    // so the capture (recorded *below* the cache) must still contain
    // everything a cold replay tower needs.
    let exprs = [
        "x[1..4,8,12..50] >? 5 <? 10",
        "#/(hash[..1024]-->next)",
        "head-->next->value",
        "root-->(left,right)->key",
        "x[1..4,8,12..50] >? 5 <? 10",
    ];
    let (live, text) = record_session(scenario::combined(), "combined", &exprs);
    let (replayed, consumed, total, divergence) = replay_session(&text, &exprs);
    assert_eq!(live, replayed, "replayed output must be byte-identical");
    assert_eq!(divergence, None);
    assert_eq!(consumed, total, "the capture is exactly sufficient");
    assert!(total > 0, "the capture must not be hollow");
}

#[test]
fn strict_replay_of_a_vectored_prefetch_session_is_byte_identical() {
    // With the planner on, the contiguous scans below are warmed by a
    // single vectored call; the cache coalesces it into one inner
    // `get_bytes_multi`, which the recorder captures as a `multi_read`
    // event. Strict replay behind an identically configured cold cache
    // with the same options must re-issue the exact same sequence.
    let exprs = ["x[..60]", "x[3..18] >? 5"];
    let opts = duel::core::EvalOptions {
        prefetch: true,
        ..duel::core::EvalOptions::default()
    };
    let cfg = CacheConfig {
        page_size: 16,
        ..CacheConfig::default()
    };

    let sink = SharedSink::default();
    let mut rec = RecordTarget::new(scenario::scan_array());
    rec.start(Box::new(sink.clone()), "sim", "vectored")
        .unwrap();
    let mut t = CachedTarget::with_config(rec, cfg.clone());
    let mut live = Vec::new();
    {
        let mut s = Session::with_options(&mut t, opts.clone());
        for e in &exprs {
            live.push(s.eval_lines(e).unwrap());
        }
    }
    t.inner_mut().stop().unwrap();
    let text = sink.contents();

    let cap = Capture::parse(&text).unwrap();
    assert!(
        cap.events
            .iter()
            .any(|ev| matches!(ev.call, duel::target::CaptureCall::MultiRead { .. })),
        "the capture must contain the planner's vectored read"
    );

    let mut rt =
        CachedTarget::with_config(ReplayTarget::from_capture(cap, ReplayMode::Strict), cfg);
    let mut replayed = Vec::new();
    {
        let mut s = Session::with_options(&mut rt, opts);
        for e in &exprs {
            replayed.push(s.eval_lines(e).unwrap());
        }
    }
    let r = rt.inner();
    assert_eq!(live, replayed, "replayed output must be byte-identical");
    assert!(
        r.divergence().is_none(),
        "vectored session must replay with zero divergence: {:?}",
        r.divergence().map(|d| d.render())
    );
    assert_eq!(r.events_consumed(), r.events_total());
}

#[test]
fn capture_has_versioned_header_and_footer() {
    let (_, text) = record_session(scenario::scan_array(), "scan", &["x[..10]"]);
    let cap = Capture::parse(&text).unwrap();
    assert_eq!(
        cap.header.schema_version,
        duel::target::CAPTURE_SCHEMA_VERSION,
        "fresh captures are written at the current schema"
    );
    assert_eq!(cap.header.backend, "sim");
    assert_eq!(cap.header.scenario, "scan");
    assert!(
        cap.footer_types.is_some(),
        "stop() must finalize the capture with a footer"
    );
    // Sequence numbers are dense and ordered.
    for (i, ev) in cap.events.iter().enumerate() {
        assert_eq!(ev.seq, i as u64);
    }
}

// ---------------------------------------------------------------------
// Divergence reporting
// ---------------------------------------------------------------------

#[test]
fn strict_replay_reports_symbolic_divergence_and_sticks() {
    // Record two raw interface calls.
    let sink = SharedSink::default();
    let mut rec = RecordTarget::new(scenario::scan_array());
    rec.start(Box::new(sink.clone()), "sim", "scan").unwrap();
    let x = rec.get_variable("x").expect("x exists");
    let mut buf = [0u8; 4];
    rec.get_bytes(x.addr, &mut buf).unwrap();
    rec.stop().unwrap();

    let cap = Capture::parse(&sink.contents()).unwrap();
    let mut r = ReplayTarget::from_capture(cap, ReplayMode::Strict);
    // First call matches the recording.
    let x2 = r.get_variable("x").expect("replayed lookup");
    assert_eq!(x2.addr, x.addr);
    // Second call diverges: different address than recorded.
    let mut buf2 = [0u8; 4];
    let err = r.get_bytes(x.addr + 0x999, &mut buf2).unwrap_err();
    match &err {
        TargetError::ReplayDivergence { at, expected, got } => {
            assert_eq!(*at, 1, "divergence at the second recorded event");
            assert!(expected.contains("get_bytes"), "{expected}");
            assert!(got.contains("get_bytes"), "{got}");
            assert_ne!(expected, got);
        }
        other => panic!("expected ReplayDivergence, got {other:?}"),
    }
    assert!(err.is_fault(), "divergence is a fault, not retryable");
    let msg = format!("{err}");
    assert!(msg.contains("replay divergence at event 1"), "{msg}");
    // Sticky: even the originally-recorded call now fails, because the
    // session has left the recorded timeline.
    assert!(r.get_bytes(x.addr, &mut buf2).is_err());
    assert!(r.divergence().is_some());
}

#[test]
fn strict_replay_past_the_end_of_capture_diverges() {
    let sink = SharedSink::default();
    let mut rec = RecordTarget::new(scenario::scan_array());
    rec.start(Box::new(sink.clone()), "sim", "scan").unwrap();
    let x = rec.get_variable("x").unwrap();
    rec.stop().unwrap();

    let cap = Capture::parse(&sink.contents()).unwrap();
    let mut r = ReplayTarget::from_capture(cap, ReplayMode::Strict);
    let _ = r.get_variable("x");
    let mut buf = [0u8; 4];
    let err = r.get_bytes(x.addr, &mut buf).unwrap_err();
    assert!(format!("{err}").contains("end of capture"), "{err}");
}

// ---------------------------------------------------------------------
// Permissive replay: new expressions over frozen state
// ---------------------------------------------------------------------

#[test]
fn permissive_replay_answers_expressions_never_issued_live() {
    // Live: scan the whole array, which pulls its pages through the
    // recorder. Separately compute the live answer to a *different*
    // expression for comparison.
    let (_, text) = record_session(scenario::scan_array(), "scan", &["x[..50] >? 0"]);
    let expected = {
        let mut t = scenario::scan_array();
        let mut s = Session::new(&mut t);
        s.eval_lines("x[7] + x[9]").unwrap()
    };

    let cap = Capture::parse(&text).unwrap();
    let mut t = ReplayTarget::from_capture(cap, ReplayMode::Permissive);
    let mut s = Session::new(&mut t);
    let got = s.eval_lines("x[7] + x[9]").unwrap();
    assert_eq!(got, expected, "frozen state must answer new queries");
}

#[test]
fn permissive_replay_faults_on_unrecorded_memory() {
    let (_, text) = record_session(scenario::scan_array(), "scan", &["x[0]"]);
    let cap = Capture::parse(&text).unwrap();
    let mut t = ReplayTarget::from_capture(cap, ReplayMode::Permissive);
    // An address far outside anything the session touched.
    let mut buf = [0u8; 4];
    let err = t.get_bytes(0xdead_0000, &mut buf).unwrap_err();
    assert!(matches!(err, TargetError::IllegalMemory { .. }), "{err:?}");
}

// ---------------------------------------------------------------------
// Capture under fault injection
// ---------------------------------------------------------------------

#[test]
fn capture_under_retry_records_transients_and_replays_deterministically() {
    // Tower: Retry<Record<Fault<Sim>>> — the recorder sees every raw
    // attempt, including the transient failures retry absorbs above it.
    let sink = SharedSink::default();
    let flaky = FaultTarget::new(scenario::scan_array(), FaultConfig::transient(3));
    let mut rec = RecordTarget::new(flaky);
    rec.start(Box::new(sink.clone()), "sim", "scan-flaky")
        .unwrap();
    let mut t = RetryTarget::with_policy(rec, RetryPolicy::fast(5));
    let live = {
        let mut s = Session::new(&mut t);
        s.eval_lines("x[..20] >? 5").unwrap()
    };
    t.inner_mut().stop().unwrap();
    let text = sink.contents();

    let cap = Capture::parse(&text).unwrap();
    assert!(
        cap.events
            .iter()
            .any(|e| e.reply.outcome() == TraceOutcome::Transient),
        "the capture must contain the recorded transient failures"
    );

    // Strict replay re-serves the transients in order; the retry layer
    // above re-drives them exactly as it did live. Run it twice: a
    // replayed flaky session must not itself be flaky.
    for round in 0..2 {
        let mut t = RetryTarget::with_policy(
            ReplayTarget::from_capture(cap.clone(), ReplayMode::Strict),
            RetryPolicy::fast(5),
        );
        let replayed = {
            let mut s = Session::new(&mut t);
            s.eval_lines("x[..20] >? 5").unwrap()
        };
        assert_eq!(live, replayed, "round {round}");
        assert!(t.inner().divergence().is_none(), "round {round}");
        assert_eq!(t.inner().events_consumed(), t.inner().events_total());
    }
}

// ---------------------------------------------------------------------
// gdbmi: Target-level capture over the MI wire, and the
// transport-level Recorder/Replayer it complements
// ---------------------------------------------------------------------

#[test]
fn connect_recorded_captures_an_mi_session_that_replays() {
    let sink = SharedSink::default();
    let mut t = MiTarget::connect_recorded(
        MockGdb::new(scenario::hash_table_basic()),
        RetryPolicy::fast(3),
        CacheConfig::default(),
        Box::new(sink.clone()),
        "hash",
    )
    .unwrap();
    let live = {
        let mut s = Session::new(&mut t);
        s.eval_lines("#/(hash[..64]-->next)").unwrap()
    };
    t.inner_mut().inner_mut().stop().unwrap();

    let cap = Capture::parse(&sink.contents()).unwrap();
    assert_eq!(cap.header.backend, "gdb-mi");
    assert_eq!(cap.header.scenario, "hash");
    assert!(!cap.events.is_empty());

    // Replay through the same (cold) retry+cache stack: identical
    // output with no MI transport and no mock anywhere in sight.
    let mut t = RetryTarget::with_policy(
        CachedTarget::with_config(
            ReplayTarget::from_capture(cap, ReplayMode::Strict),
            CacheConfig::default(),
        ),
        RetryPolicy::fast(3),
    );
    let replayed = {
        let mut s = Session::new(&mut t);
        s.eval_lines("#/(hash[..64]-->next)").unwrap()
    };
    assert_eq!(live, replayed);
    assert!(t.inner().inner().divergence().is_none());
}

#[test]
fn gdbmi_transport_recorder_roundtrips_full_session_output() {
    // The MI-text-level pair (one debugger dialect, raw lines) —
    // recorded and replayed around a *complete* evaluator session, not
    // just single adapter calls: DESIGN.md §11's reconciliation says
    // both layers must reproduce identical session output.
    let exprs = ["x[1..4,8,12..50] >? 5 <? 10", "#/(x[..50] >? 0)"];
    let rec = Recorder::new(MockGdb::new(scenario::scan_array()));
    let mut t = MiTarget::connect(rec).unwrap();
    let live: Vec<Vec<String>> = {
        let mut s = Session::new(&mut t);
        exprs.iter().map(|e| s.eval_lines(e).unwrap()).collect()
    };
    let dump = t.client_mut().transport().dump();

    let mut t2 = MiTarget::connect(Replayer::from_dump(&dump)).unwrap();
    let replayed: Vec<Vec<String>> = {
        let mut s = Session::new(&mut t2);
        exprs.iter().map(|e| s.eval_lines(e).unwrap()).collect()
    };
    assert_eq!(live, replayed);
    assert_eq!(
        t2.client_mut().transport().remaining(),
        0,
        "the session must consume the whole recording"
    );
}

// ---------------------------------------------------------------------
// Property: recorded sessions replay byte-identically
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    #[test]
    fn recorded_bench_sessions_replay_byte_identically(
        n in 1u64..64,
        seed in 0u64..1_000_000,
        threshold in -5i64..5,
    ) {
        let expr = format!("x[..{n}] >? {threshold}");
        let exprs = [expr.as_str()];
        let (live, text) = record_session(
            duel::target::scenario::bench_array(n, seed),
            "bench_array",
            &exprs,
        );
        let (replayed, consumed, total, divergence) = replay_session(&text, &exprs);
        prop_assert_eq!(live, replayed);
        prop_assert_eq!(divergence, None);
        prop_assert_eq!(consumed, total);
    }
}
