//! The paper ran on DECstation (ILP32 little-endian) and SPARC (ILP32
//! big-endian) workstations. The same DUEL queries must produce the
//! same answers under every supported ABI — only object sizes differ.

use duel::core::Session;
use duel::target::{scenario, SimTarget, Target};
use duel_ctype::{Abi, Prim};

/// Builds the linked-list debuggee under a given ABI.
fn list_target(abi: Abi) -> SimTarget {
    let mut t = SimTarget::new(abi);
    let (_, plty) = scenario::define_list_struct(&mut t);
    let head = scenario::build_int_list(&mut t, &[10, 11, 12, 13, 27, 15, 16, 17, 18, 27, 20, 21]);
    let la = t.core.define_global("L", plty).unwrap();
    t.core.write_ptr(la, head).unwrap();
    let int = t.core.types.prim(Prim::Int);
    let arr = t.core.types.array(int, Some(16));
    let base = t.core.define_global("x", arr).unwrap();
    for i in 0..16i32 {
        t.core.write_int(base + (i as u64) * 4, i * i - 8).unwrap();
    }
    t
}

fn lines(t: &mut dyn Target, src: &str) -> Vec<String> {
    let mut s = Session::new(t);
    s.eval_lines(src)
        .unwrap_or_else(|e| panic!("`{src}` failed: {e}"))
}

#[test]
fn queries_agree_across_abis() {
    let queries = [
        "x[..16] >? 40",
        "L-->next->value",
        "#/(L-->next)",
        "L-->next->(value ==? next-->next->value)",
        "+/(L-->next->value)",
        "x[3] + x[4]",
    ];
    let mut reference: Option<Vec<Vec<String>>> = None;
    for abi in [Abi::lp64(), Abi::ilp32(), Abi::ilp32_be()] {
        let mut t = list_target(abi.clone());
        let got: Vec<Vec<String>> = queries.iter().map(|q| lines(&mut t, q)).collect();
        match &reference {
            None => reference = Some(got),
            Some(want) => {
                assert_eq!(&got, want, "ABI {abi:?} diverged")
            }
        }
    }
}

#[test]
fn sizes_differ_as_expected() {
    // struct list { int value; struct list *next; }
    let mut t32 = list_target(Abi::ilp32());
    assert_eq!(
        lines(&mut t32, "sizeof(struct list)"),
        vec!["8"] // 4 + 4
    );
    let mut t64 = list_target(Abi::lp64());
    assert_eq!(
        lines(&mut t64, "sizeof(struct list)"),
        vec!["16"] // 4 + pad + 8
    );
    assert_eq!(lines(&mut t32, "sizeof(char *)"), vec!["4"]);
    assert_eq!(lines(&mut t64, "sizeof(char *)"), vec!["8"]);
    // `long` is 4 bytes under ILP32, 8 under LP64.
    assert_eq!(lines(&mut t32, "sizeof(long)"), vec!["4"]);
    assert_eq!(lines(&mut t64, "sizeof(long)"), vec!["8"]);
}

#[test]
fn big_endian_memory_reads_back_correctly() {
    let mut t = list_target(Abi::ilp32_be());
    // Raw big-endian bytes: x[3] = 1 must store as 00 00 00 01.
    let mut s = Session::new(&mut t);
    s.eval("x[3] = 1 ;").unwrap();
    drop(s);
    let x = t.get_variable("x").unwrap();
    let mut buf = [0u8; 4];
    t.get_bytes(x.addr + 12, &mut buf).unwrap();
    assert_eq!(buf, [0, 0, 0, 1]);
    // And DUEL reads it back as 1.
    assert_eq!(lines(&mut t, "x[2..4]")[1], "x[3] = 1");
}

#[test]
fn pointer_walks_respect_abi_pointer_size() {
    for abi in [Abi::ilp32(), Abi::ilp32_be(), Abi::lp64()] {
        let mut t = list_target(abi.clone());
        // The duplicate query must find positions 4 and 9 regardless
        // of node layout.
        let out = lines(
            &mut t,
            "L-->next#i->value ==? L-->next#j->value => \
             if (i < j) L-->next[[i,j]]->value",
        );
        assert_eq!(
            out,
            vec!["L-->next[[4]]->value = 27", "L-->next[[9]]->value = 27"],
            "ABI {abi:?}"
        );
    }
}
