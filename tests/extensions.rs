//! The paper's Discussion-section proposals, implemented as
//! extensions:
//!
//! * frame exploration (`frames()`, `local("x", k)`) — "displaying the
//!   local x in all of the currently active stack frames … is tedious
//!   to do with most debuggers. Mechanisms for exploring such 'unnamed'
//!   portions of the program state would be useful";
//! * DUEL-powered conditional breakpoints — "Duel would also be useful
//!   in other traditional debugging facilities, e.g., watchpoints and
//!   conditional breakpoints";
//! * assertion checking via the `&&/` reduction — "Complex assertions,
//!   e.g., 'x[0] through x[n] are positive', often need non-trivial
//!   code to compute the assertion outcome."

use duel::core::Session;
use duel::minic::{Debugger, StopReason};
use duel::target::scenario;

/// A recursive program stopped four frames deep, each with a local `n`.
const RECURSIVE: &str = "\
int depth_reached;\n\
int dig(int n) {\n\
    depth_reached = n;\n\
    if (n == 3) return n;     /* line 4: stop here */\n\
    return dig(n + 1) + 1;\n\
}\n\
int main() {\n\
    int n;\n\
    n = 99;\n\
    return dig(0);\n\
}\n";

#[test]
fn frames_generator_counts_active_frames() {
    let mut d = Debugger::new(RECURSIVE).unwrap();
    d.add_breakpoint(4);
    // Line 4 executes on every call; the fourth hit is at n == 3, with
    // frames dig(3) dig(2) dig(1) dig(0) main.
    for _ in 0..4 {
        assert_eq!(d.run().unwrap(), StopReason::Breakpoint { line: 4 });
    }
    let mut s = Session::new(&mut d);
    assert_eq!(s.eval_lines("#/frames()").unwrap(), vec!["5"]);
    assert_eq!(
        s.eval_lines("frames()").unwrap(),
        vec!["0", "1", "2", "3", "4"]
    );
}

#[test]
fn local_in_every_frame() {
    let mut d = Debugger::new(RECURSIVE).unwrap();
    d.add_breakpoint(4);
    loop {
        match d.run().unwrap() {
            StopReason::Breakpoint { .. } => {
                // Only stop when the innermost n is 3.
                let mut s = Session::new(&mut d);
                let v = s.eval_lines("n + 0").unwrap();
                if v == vec!["3"] {
                    break;
                }
            }
            other => panic!("{other:?}"),
        }
    }
    let mut s = Session::new(&mut d);
    // The paper's wished-for query: the local `n` in every frame.
    assert_eq!(
        s.eval_lines("local(\"n\", frames())").unwrap(),
        vec![
            "local(\"n\", 0) = 3",
            "local(\"n\", 1) = 2",
            "local(\"n\", 2) = 1",
            "local(\"n\", 3) = 0",
            "local(\"n\", 4) = 99",
        ]
    );
    // Frames lacking the local are skipped silently.
    assert_eq!(
        s.eval_lines("#/local(\"no_such\", frames())").unwrap(),
        vec!["0"]
    );
    // And they compose with ordinary operators.
    assert_eq!(
        s.eval_lines("+/local(\"n\", frames())").unwrap(),
        vec!["105"]
    );
}

#[test]
fn conditional_breakpoint_with_duel_expression() {
    const LOOP: &str = "\
int x[32];\n\
int main() {\n\
    int i;\n\
    for (i = 0; i < 32; i++)\n\
        x[i] = i * 3;          /* line 5 */\n\
    return x[31];\n\
}\n";
    let mut d = Debugger::new(LOOP).unwrap();
    // Stop at line 5 only once some element exceeds 20 — a query over
    // the whole array, not just a scalar condition.
    d.add_conditional_breakpoint(5, "||/(x[..32] >? 20)");
    match d.run().unwrap() {
        StopReason::Breakpoint { line } => assert_eq!(line, 5),
        other => panic!("{other:?}"),
    }
    // x[7] = 21 was just written; i is 8 on the next iteration's entry.
    let mut s = Session::new(&mut d);
    assert_eq!(s.eval_lines("x[..32] >? 20").unwrap(), vec!["x[7] = 21"]);
    drop(s);
    assert!(matches!(
        d.cont().unwrap(),
        StopReason::Breakpoint { line: 5 }
    ));
}

#[test]
fn assertions_via_all_reduction() {
    // "x[0] through x[n] are positive" is one reduction.
    let mut t = scenario::range_array();
    let mut s = Session::new(&mut t);
    // range_array has x[3] = -9: the assertion fails…
    assert_eq!(s.eval_lines("&&/(x[..10] >= 0)").unwrap(), vec!["0"]);
    // …fix the offending element and it holds.
    s.eval("x[3] = 9 ;").unwrap();
    assert_eq!(s.eval_lines("&&/(x[..10] >= 0)").unwrap(), vec!["1"]);
}

#[test]
fn sequence_equality_builtin() {
    // The paper's `(equality e1 e2)` reduction, exposed as `equal()`.
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    assert_eq!(s.eval_lines("equal(1..3, (1,2,3))").unwrap(), vec!["1"]);
    assert_eq!(s.eval_lines("equal(1..3, 1..4)").unwrap(), vec!["0"]);
    assert_eq!(s.eval_lines("equal(1..3, (1,9,3))").unwrap(), vec!["0"]);
    assert_eq!(s.eval_lines("equal(1..0, 5..4)").unwrap(), vec!["1"]);
    // Against target data: x[1..3] vs itself and vs a shifted window.
    assert_eq!(s.eval_lines("equal(x[1..3], x[1..3])").unwrap(), vec!["1"]);
    assert_eq!(s.eval_lines("equal(x[1..3], x[2..4])").unwrap(), vec!["0"]);
}

#[test]
fn eval_stats_expose_work_counters() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    s.eval("x[..10] >? 0").unwrap();
    let stats = s.last_stats();
    assert_eq!(stats.values, 10, "{stats:?}");
    assert!(stats.ticks >= 10, "{stats:?}");
    // A bigger scan does proportionally more work.
    s.eval("x[..60] >? 0").unwrap();
    assert!(s.last_stats().ticks > stats.ticks);
}

#[test]
fn ast_notation_matches_the_paper() {
    // The Semantics section's own example.
    let ast = duel::core::parser::parse("a*5 + *b", &mut |_| false).unwrap();
    assert_eq!(
        duel::core::to_sexpr(&ast),
        "(plus (multiply (name \"a\") (constant 5)) \
         (indirect (name \"b\")))"
    );
}

#[test]
fn trace_reproduces_the_papers_walkthrough() {
    // The Semantics section walks through evaluating (1..3)+(5,9):
    // "This recursive invocation of eval returns 1 … This second call
    // to eval on (alternate 5 9) returns 5, apply computes the sum, 6
    // … This call returns 9, which causes the top-level call to eval
    // to return 10 … the whole process of re-evaluating
    // (alternate 5 9) begins anew".
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    s.options.trace = true;
    s.eval("(1..3)+(5,9)").unwrap();
    let trace = s.take_trace();
    let top: Vec<&str> = trace
        .iter()
        .filter(|l| l.starts_with("eval(binary)"))
        .map(|s| s.as_str())
        .collect();
    assert_eq!(
        top,
        vec![
            "eval(binary) -> yield 1+5",
            "eval(binary) -> yield 1+9",
            "eval(binary) -> yield 2+5",
            "eval(binary) -> yield 2+9",
            "eval(binary) -> yield 3+5",
            "eval(binary) -> yield 3+9",
            "eval(binary) -> NOVALUE",
        ]
    );
    // The alternate restarts once per left value: it hits NOVALUE
    // exactly 3 times before the range is exhausted.
    let alt_dead = trace
        .iter()
        .filter(|l| l.trim_start().starts_with("eval(alternate) -> NOVALUE"))
        .count();
    assert_eq!(alt_dead, 3);
    // Tracing off ⇒ no trace.
    s.options.trace = false;
    s.eval("1+1").unwrap();
    assert!(s.take_trace().is_empty());
}

#[test]
fn watchpoints_fire_on_structure_change() {
    const PROG: &str = "\
int x[8];\n\
int untouched;\n\
int main() {\n\
    int i;\n\
    untouched = 0;\n\
    for (i = 0; i < 4; i++)\n\
        x[i * 2] = i + 1;\n\
    return x[6];\n\
}\n";
    let mut d = Debugger::new(PROG).unwrap();
    // Watch the whole array: fires once per element write.
    d.add_watchpoint("x[..8]");
    let mut fires = 0;
    loop {
        match d.run().unwrap() {
            StopReason::Watchpoint { .. } => fires += 1,
            StopReason::Exited { code } => {
                assert_eq!(code, 4);
                break;
            }
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(fires, 4);
    // At the end, querying confirms the final state.
    let mut s = Session::new(&mut d);
    assert_eq!(
        s.eval_lines("x[..8] >? 0").unwrap(),
        vec!["x[0] = 1", "x[2] = 2", "x[4] = 3", "x[6] = 4"]
    );
}

#[test]
fn watchpoint_on_a_reduction() {
    const PROG: &str = "\
int total;\n\
int main() {\n\
    int i;\n\
    for (i = 1; i <= 10; i++)\n\
        if (i % 3 == 0)\n\
            total = total + i;\n\
    return total;\n\
}\n";
    let mut d = Debugger::new(PROG).unwrap();
    // A derived quantity: stops only when the sum actually changes
    // (i = 3, 6, 9).
    d.add_watchpoint("+/(total, 0)");
    let mut fires = 0;
    loop {
        match d.run().unwrap() {
            StopReason::Watchpoint { .. } => fires += 1,
            StopReason::Exited { code } => {
                assert_eq!(code, 18);
                break;
            }
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(fires, 3);
}
