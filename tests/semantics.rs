//! Semantics coverage beyond the paper's transcripts: every operator
//! family, edge cases, failure modes, and evaluator options.

use duel::core::{DuelError, EvalOptions, Session, SymMode};
use duel::target::{scenario, SimTarget, Target};
use duel_ctype::{Abi, Prim};

fn lines(t: &mut dyn Target, src: &str) -> Vec<String> {
    let mut s = Session::new(t);
    s.eval_lines(src)
        .unwrap_or_else(|e| panic!("`{src}` failed: {e}"))
}

fn values(t: &mut dyn Target, src: &str) -> Vec<String> {
    let mut s = Session::new(t);
    s.eval(src)
        .unwrap_or_else(|e| panic!("`{src}` failed: {e}"))
        .into_iter()
        .filter_map(|l| match l {
            duel::core::OutputLine::Value { value, .. } => Some(value),
            _ => None,
        })
        .collect()
}

// ---- arithmetic and conversions ------------------------------------------

#[test]
fn c_operator_zoo() {
    let mut t = scenario::scan_array();
    assert_eq!(lines(&mut t, "7 % 3"), vec!["1"]);
    assert_eq!(lines(&mut t, "1 << 4"), vec!["16"]);
    assert_eq!(lines(&mut t, "-16 >> 2"), vec!["-4"]);
    // Hex literals display in decimal in symbolic values.
    assert_eq!(lines(&mut t, "0x0f & 0x35"), vec!["15&53 = 5"]);
    assert_eq!(lines(&mut t, "1 | 6"), vec!["7"]);
    assert_eq!(lines(&mut t, "5 ^ 3"), vec!["6"]);
    assert_eq!(lines(&mut t, "~0"), vec!["-1"]);
    assert_eq!(lines(&mut t, "!5"), vec!["0"]);
    assert_eq!(lines(&mut t, "!0"), vec!["1"]);
    assert_eq!(lines(&mut t, "-(3+4)"), vec!["-7"]);
    assert_eq!(lines(&mut t, "3 < 4"), vec!["1"]);
    assert_eq!(lines(&mut t, "3 >= 4"), vec!["0"]);
}

#[test]
fn ternary_and_logical() {
    let mut t = scenario::scan_array();
    assert_eq!(lines(&mut t, "1 ? 10 : 20"), vec!["10"]);
    assert_eq!(lines(&mut t, "0 ? 10 : 20"), vec!["20"]);
    assert_eq!(lines(&mut t, "2 && 3"), vec!["3"]);
    assert_eq!(lines(&mut t, "0 && 3"), Vec::<String>::new());
    assert_eq!(lines(&mut t, "0 || 7"), vec!["7"]);
    // `&&` with a generator right operand (paper semantics): all values
    // of e2 for each non-zero e1.
    assert_eq!(values(&mut t, "1 && (1..3)"), vec!["1", "2", "3"]);
}

#[test]
fn unsigned_semantics() {
    let mut t = scenario::scan_array();
    // Unsigned comparison wraps: (unsigned)-1 is the max value.
    assert_eq!(lines(&mut t, "(unsigned int)-1 > 0"), vec!["1"]);
    // Char-typed values display as glyphs.
    assert_eq!(lines(&mut t, "(unsigned char)300"), vec!["','"]);
    assert_eq!(lines(&mut t, "(char)200 < 0"), vec!["1"]);
}

#[test]
fn float_formatting_and_math() {
    let mut t = scenario::scan_array();
    assert_eq!(lines(&mut t, "1.5 + 2"), vec!["3.500"]);
    assert_eq!(lines(&mut t, "10 / 4"), vec!["2"]);
    assert_eq!(lines(&mut t, "10 / 4.0"), vec!["2.500"]);
    assert_eq!(lines(&mut t, "(int)2.75"), vec!["2"]);
}

#[test]
fn sizeof_forms() {
    let mut t = scenario::hash_table_basic();
    assert_eq!(lines(&mut t, "sizeof(int)"), vec!["4"]);
    assert_eq!(lines(&mut t, "sizeof(char *)"), vec!["8"]);
    // LP64 symbol: 8 (name) + 4 (scope) + pad + 8 (next) = 24.
    assert_eq!(lines(&mut t, "sizeof(struct symbol)"), vec!["24"]);
    // `sizeof expr` shows the resolved type symbolically.
    assert_eq!(
        lines(&mut t, "sizeof hash"),
        vec!["sizeof(struct symbol *[1024]) = 8192"]
    );
    assert_eq!(
        lines(&mut t, "sizeof hash[0]"),
        vec!["sizeof(struct symbol *) = 8"]
    );
}

// ---- lvalues, assignment, increment ----------------------------------------

#[test]
fn compound_assignment_and_incdec() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    s.eval("int i; i = 10 ;").unwrap();
    assert_eq!(s.eval_lines("i += 5").unwrap(), vec!["15"]);
    assert_eq!(s.eval_lines("i -= 1").unwrap(), vec!["14"]);
    assert_eq!(s.eval_lines("i *= 2").unwrap(), vec!["28"]);
    assert_eq!(s.eval_lines("i /= 4").unwrap(), vec!["7"]);
    assert_eq!(s.eval_lines("i %= 4").unwrap(), vec!["3"]);
    assert_eq!(s.eval_lines("i <<= 2").unwrap(), vec!["12"]);
    assert_eq!(s.eval_lines("++i").unwrap(), vec!["13"]);
    assert_eq!(s.eval_lines("i++").unwrap(), vec!["13"]);
    assert_eq!(s.eval_lines("i + 0").unwrap(), vec!["14"]);
    assert_eq!(s.eval_lines("--i; i + 0").unwrap(), vec!["i+0 = 13"]);
}

#[test]
fn pointers_and_address_of() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    // &x[3] dereferences back to x[3].
    assert_eq!(s.eval_lines("*&x[3]").unwrap(), vec!["7"]);
    // Pointer arithmetic scales by the element size.
    assert_eq!(s.eval_lines("*(&x[0] + 3)").unwrap(), vec!["7"]);
    assert_eq!(s.eval_lines("&x[4] - &x[1]").unwrap(), vec!["3"]);
    // An alias to a pointer walks like one.
    s.eval("p := &x[0] ;").unwrap();
    assert_eq!(s.eval_lines("p[3]").unwrap(), vec!["7"]);
}

#[test]
fn assignment_is_an_error_on_rvalues() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    match s.eval("(x[0] + 1) = 5") {
        Err(DuelError::NotLvalue { sym }) => {
            assert_eq!(sym, "x[0]+1")
        }
        other => panic!("{other:?}"),
    }
    assert!(matches!(s.eval("&42"), Err(DuelError::NotLvalue { .. })));
}

#[test]
fn division_by_zero_reports_symbolically() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    match s.eval("x[3] / 0") {
        Err(DuelError::DivByZero { sym }) => {
            assert_eq!(sym, "x[3]/0")
        }
        other => panic!("{other:?}"),
    }
    assert!(matches!(s.eval("7 % 0"), Err(DuelError::DivByZero { .. })));
}

// ---- generators -------------------------------------------------------------

#[test]
fn ranges_edge_cases() {
    let mut t = scenario::scan_array();
    // Empty range produces nothing.
    assert_eq!(values(&mut t, "5..4"), Vec::<String>::new());
    assert_eq!(values(&mut t, "..0"), Vec::<String>::new());
    // Single-element range.
    assert_eq!(values(&mut t, "5..5"), vec!["5"]);
    // Negative bounds.
    assert_eq!(values(&mut t, "-2..1"), vec!["-2", "-1", "0", "1"]);
}

#[test]
fn value_limit_stops_runaways() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    s.options.max_values = 100;
    match s.eval("0..") {
        Err(DuelError::LimitExceeded { limit }) => {
            assert_eq!(limit, 100)
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn filters_with_generator_rhs() {
    let mut t = scenario::scan_array();
    // x[3] ==? each of 6..9 — yields once (on the 7).
    assert_eq!(lines(&mut t, "x[3] ==? (6..9)"), vec!["x[3] = 7"]);
    // A filter that never passes yields nothing.
    assert_eq!(lines(&mut t, "x[1..3] >? 1000"), Vec::<String>::new());
}

#[test]
fn while_expression_semantics() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    // The body runs until the condition has a zero value, re-evaluating
    // each round (the paper's WHILE).
    s.eval("int n; n = 3 ;").unwrap();
    assert_eq!(
        s.eval_lines("while (n > 0) {n--}").unwrap(),
        vec!["3", "2", "1"]
    );
}

#[test]
fn do_not_confuse_seq_and_imply() {
    let mut t = scenario::scan_array();
    // `;` discards the left values; `=>` multiplies.
    assert_eq!(values(&mut t, "(1,2); 10"), vec!["10"]);
    assert_eq!(values(&mut t, "(1,2) => 10"), vec!["10", "10"]);
}

#[test]
fn reductions_cover_families() {
    let mut t = scenario::scan_array();
    assert_eq!(lines(&mut t, "#/(1..100)"), vec!["100"]);
    assert_eq!(lines(&mut t, "+/(1..100)"), vec!["5050"]);
    assert_eq!(lines(&mut t, "&&/(1..5)"), vec!["1"]);
    assert_eq!(lines(&mut t, "&&/(0..5)"), vec!["0"]);
    assert_eq!(lines(&mut t, "||/(0..0)"), vec!["0"]);
    assert_eq!(lines(&mut t, "||/(0..1)"), vec!["1"]);
    // Max/min keep the symbolic value of the extremum — they pinpoint
    // *where*.
    assert_eq!(lines(&mut t, ">/x[1..4]"), vec!["x[4] = 104"]);
    assert_eq!(lines(&mut t, "</x[1..4]"), vec!["x[3] = 7"]);
    // Reductions over empty sequences.
    assert_eq!(lines(&mut t, "#/(1..0)"), vec!["0"]);
    assert_eq!(lines(&mut t, "+/(1..0)"), vec!["0"]);
    assert_eq!(lines(&mut t, ">/(1..0)"), Vec::<String>::new());
}

#[test]
fn select_edge_cases() {
    let mut t = scenario::scan_array();
    // Out-of-range select indices produce nothing.
    assert_eq!(values(&mut t, "(1..3)[[5]]"), Vec::<String>::new());
    assert_eq!(values(&mut t, "(1..3)[[0,2]]"), vec!["1", "3"]);
    // Selection caches: selecting the same index twice works.
    assert_eq!(values(&mut t, "(1..3)[[1,1]]"), vec!["2", "2"]);
}

#[test]
fn until_with_literal() {
    let mut t = scenario::scan_array();
    // Stop at the first value equal to 3 (exclusive).
    assert_eq!(values(&mut t, "(1..9)@3"), vec!["1", "2"]);
    // Stop condition on values.
    assert_eq!(values(&mut t, "(1..9)@(_>4)"), vec!["1", "2", "3", "4"]);
}

#[test]
fn index_alias_resets_between_commands() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    assert_eq!(
        s.eval_lines("x[10..12]#k => {k}").unwrap(),
        vec!["0", "1", "2"]
    );
    // And again — the counter restarts.
    assert_eq!(
        s.eval_lines("x[10..12]#k => {k}").unwrap(),
        vec!["0", "1", "2"]
    );
}

// ---- structures ---------------------------------------------------------------

#[test]
fn nested_with_scopes() {
    let mut t = scenario::hash_table_basic();
    // Inner `with` shadows outer: `next->scope` inside a node's scope.
    // Typed verbatim, the symbolic equals the input, so only the
    // value prints.
    assert_eq!(lines(&mut t, "hash[0]->next->scope"), vec!["3"]);
    // `_` reaches the inner operand.
    assert_eq!(
        lines(&mut t, "hash[0]->(_->scope)"),
        vec!["hash[0]->scope = 4"]
    );
}

#[test]
fn dfs_cycle_guard() {
    // Build a cyclic list: a -> b -> a.
    let mut t = SimTarget::new(Abi::lp64());
    let (_, plty) = scenario::define_list_struct(&mut t);
    let rid = t.core.types.struct_tag("list").unwrap();
    let l = t.core.types.record_layout(rid, &t.core.abi).unwrap();
    let (voff, noff, size) = (l.fields[0].offset, l.fields[1].offset, l.size);
    let a = t.core.malloc(size).unwrap();
    let b = t.core.malloc(size).unwrap();
    t.core.write_int(a + voff, 1).unwrap();
    t.core.write_ptr(a + noff, b).unwrap();
    t.core.write_int(b + voff, 2).unwrap();
    t.core.write_ptr(b + noff, a).unwrap();
    let la = t.core.define_global("L", plty).unwrap();
    t.core.write_ptr(la, a).unwrap();
    // With the (default) cycle guard the walk terminates at 2 nodes.
    assert_eq!(values(&mut t, "L-->next->value"), vec!["1", "2"]);
    // With the guard off (the paper's behaviour) the value limit trips.
    let mut s = Session::new(&mut t);
    s.options.dfs_cycle_check = false;
    s.options.max_values = 50;
    assert!(matches!(
        s.eval("L-->next->value"),
        Err(DuelError::LimitExceeded { .. })
    ));
}

#[test]
fn dfs_stops_at_wild_pointers() {
    // A list whose second node's next points into unmapped memory: the
    // expansion silently stops, per the paper ("an invalid pointer
    // terminates the sequence").
    let mut t = SimTarget::new(Abi::lp64());
    let (_, plty) = scenario::define_list_struct(&mut t);
    let rid = t.core.types.struct_tag("list").unwrap();
    let l = t.core.types.record_layout(rid, &t.core.abi).unwrap();
    let (voff, noff, size) = (l.fields[0].offset, l.fields[1].offset, l.size);
    let a = t.core.malloc(size).unwrap();
    let b = t.core.malloc(size).unwrap();
    t.core.write_int(a + voff, 1).unwrap();
    t.core.write_ptr(a + noff, b).unwrap();
    t.core.write_int(b + voff, 2).unwrap();
    t.core.write_ptr(b + noff, 0xdead_beef).unwrap();
    let la = t.core.define_global("L", plty).unwrap();
    t.core.write_ptr(la, a).unwrap();
    assert_eq!(values(&mut t, "L-->next->value"), vec!["1", "2"]);
}

#[test]
fn bitfields_through_duel() {
    let mut t = SimTarget::new(Abi::lp64());
    let u = t.core.types.prim(Prim::UInt);
    let (rid, sty) = t.core.types.declare_struct("flags");
    t.core.types.define_record(
        rid,
        vec![
            duel_ctype::Field::bitfield("lo", u, 4),
            duel_ctype::Field::bitfield("hi", u, 4),
        ],
    );
    let addr = t.core.define_global("f", sty).unwrap();
    t.core.write_uint(addr, 0xa5, 4).unwrap();
    assert_eq!(lines(&mut t, "f.lo"), vec!["5"]);
    assert_eq!(lines(&mut t, "f.hi"), vec!["10"]);
    // Writing a bitfield preserves its neighbours.
    let mut s = Session::new(&mut t);
    s.eval("f.hi = 3 ;").unwrap();
    assert_eq!(s.eval_lines("f.lo").unwrap(), vec!["5"]);
    assert_eq!(s.eval_lines("f.hi").unwrap(), vec!["3"]);
}

#[test]
fn enum_values_display_by_name() {
    let mut t = SimTarget::new(Abi::lp64());
    let (_, ety) = t.core.types.define_enum(
        Some("color"),
        vec![("RED".into(), 0), ("GREEN".into(), 1), ("BLUE".into(), 2)],
    );
    let addr = t.core.define_global("c", ety).unwrap();
    t.core.write_int(addr, 1).unwrap();
    assert_eq!(lines(&mut t, "c + 0"), vec!["1"]);
    assert_eq!(values(&mut t, "c, c"), vec!["GREEN", "GREEN"]);
    // Enumerators resolve as constants.
    assert_eq!(lines(&mut t, "BLUE + 1"), vec!["3"]);
}

#[test]
fn struct_display_format() {
    let mut t = scenario::binary_tree();
    let out = lines(&mut t, "*root, 0");
    assert!(
        out[0].starts_with("*root = {key = 9, left = 0x"),
        "{}",
        out[0]
    );
}

// ---- options -------------------------------------------------------------------

#[test]
fn lazy_sym_mode_prints_values_only() {
    let mut t = scenario::scan_array();
    let mut s = Session::with_options(
        &mut t,
        EvalOptions {
            sym_mode: SymMode::Lazy,
            ..EvalOptions::default()
        },
    );
    assert_eq!(
        s.eval_lines("x[1..4,8,12..50] >? 5 <? 10").unwrap(),
        vec!["7", "9", "6"]
    );
}

#[test]
fn compression_threshold_is_configurable() {
    let mut t = scenario::hash_table_basic();
    let mut s = Session::new(&mut t);
    s.options.compress_threshold = 2;
    assert_eq!(
        s.eval_lines("hash[0]-->next->scope").unwrap(),
        vec![
            "hash[0]->scope = 4",
            "hash[0]->next->scope = 3",
            "hash[0]-->next[[2]]->scope = 2",
            "hash[0]-->next[[3]]->scope = 1",
        ]
    );
}

#[test]
fn frames_are_reported() {
    let mut t = scenario::scan_array();
    t.core.push_frame("main");
    t.core.push_frame("helper");
    assert_eq!(t.frame_count(), 2);
    assert_eq!(t.frame_info(0).unwrap().function, "helper");
}

#[test]
fn with_on_array_of_structs() {
    // `.` enters each element of a struct array (no pointers involved).
    let mut t = SimTarget::new(Abi::lp64());
    let int = t.core.types.prim(Prim::Int);
    let (rid, sty) = t.core.types.declare_struct("pt");
    t.core.types.define_record(
        rid,
        vec![
            duel_ctype::Field::new("x", int),
            duel_ctype::Field::new("y", int),
        ],
    );
    let arr = t.core.types.array(sty, Some(3));
    let base = t.core.define_global("pts", arr).unwrap();
    for i in 0..3u64 {
        t.core.write_int(base + i * 8, i as i32 + 1).unwrap();
        t.core
            .write_int(base + i * 8 + 4, (i as i32 + 1) * 10)
            .unwrap();
    }
    assert_eq!(
        lines(&mut t, "pts[..3].x"),
        vec!["pts[0].x = 1", "pts[1].x = 2", "pts[2].x = 3"]
    );
    assert_eq!(
        lines(&mut t, "pts[..3].(x*100 + y)"),
        vec![
            "pts[0].x*100+pts[0].y = 110",
            "pts[1].x*100+pts[1].y = 220",
            "pts[2].x*100+pts[2].y = 330"
        ]
    );
    // Sum over a struct-array field.
    assert_eq!(lines(&mut t, "+/(pts[..3].y)"), vec!["60"]);
}

#[test]
fn while_with_generator_condition() {
    // The paper: `while (x[..N]) e` produces e "as long as all of the
    // elements of x are non-zero" — the condition is a *generator* that
    // must be all-truthy each round.
    let mut t = SimTarget::new(Abi::lp64());
    let int = t.core.types.prim(Prim::Int);
    let arr = t.core.types.array(int, Some(3));
    let base = t.core.define_global("x", arr).unwrap();
    for i in 0..3u64 {
        t.core.write_int(base + i * 4, 3 - i as i32).unwrap();
    }
    // x = {3, 2, 1}: each round decrements x[2]; after one round x[2]
    // is 0 and the while stops.
    let mut s = Session::new(&mut t);
    let out = s.eval_lines("while (x[..3]) (x[2] -= 1; {x[2]})").unwrap();
    assert_eq!(out, vec!["0"]);
}

#[test]
fn underscore_requires_with_scope() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    assert!(matches!(s.eval("_ + 1"), Err(DuelError::Undefined { .. })));
}

#[test]
fn chained_aliases_preserve_lvalueness() {
    // The paper: "If e is an lvalue, so is a … after (define b x[5]),
    // changing b changes x[5]."
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    s.eval("b := x[5] ;").unwrap();
    s.eval("b = 777 ;").unwrap();
    assert_eq!(s.eval_lines("x[5..5]").unwrap(), vec!["x[5] = 777"]);
    // An alias of an alias still writes through.
    s.eval("c := b; c = 3 ;").unwrap();
    assert_eq!(s.eval_lines("x[5..5]").unwrap(), vec!["x[5] = 3"]);
}

#[test]
fn deep_nesting_fails_gracefully() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    // 300 nested parens must error, not blow the stack.
    let deep = format!("{}1{}", "(".repeat(300), ")".repeat(300));
    assert!(matches!(s.eval(&deep), Err(DuelError::Parse { .. })));
    // 64 levels is fine.
    let ok = format!("{}1{}", "(".repeat(64), ")".repeat(64));
    assert_eq!(s.eval_lines(&ok).unwrap(), vec!["1"]);
}

#[test]
fn struct_and_pointer_display_forms() {
    let mut t = scenario::hash_table_basic();
    // Deref of a struct pointer prints the whole record, with the char*
    // name shown as a string.
    let out = lines(&mut t, "*hash[0..0]");
    assert_eq!(out.len(), 1);
    assert!(out[0].starts_with("*hash[0] = {name = 0x"), "{}", out[0]);
    assert!(out[0].contains("\"alpha\""), "{}", out[0]);
    assert!(out[0].contains("scope = 4"), "{}", out[0]);
    // A NULL pointer prints as 0x0.
    let out = lines(&mut t, "hash[2..2]");
    assert_eq!(out, vec!["hash[2] = 0x0"]);
}

#[test]
fn dfs_applies_to_each_root_value() {
    // `hash[0,42]-->next` restarts the walk per root.
    let mut t = scenario::hash_table_basic();
    assert_eq!(
        values(&mut t, "hash[0,42]-->next->scope"),
        vec!["4", "3", "2", "1", "7", "4"]
    );
}

#[test]
fn sequence_chains_left_to_right() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    s.eval("int a, b; a = 1; b = 2 ;").unwrap();
    assert_eq!(
        s.eval_lines("a = a + b; b = a * 10; {b}").unwrap(),
        vec!["30"]
    );
}

#[test]
fn imply_rhs_sees_each_alias_binding() {
    // The paper's `x:= … => y:= x->scope => y = 0` pattern relies on
    // the alias being rebound per value *before* the RHS runs.
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    assert_eq!(
        s.eval_lines("k := (2,5,7) => {k} * 10").unwrap(),
        vec!["2*10 = 20", "5*10 = 50", "7*10 = 70"]
    );
}

#[test]
fn until_with_parenthesized_negative_constant() {
    // Regression found by the differential oracle: `e@(-1)` must treat
    // `(-1)` as a constant terminator (paper: "n can be a constant"),
    // not as an always-true stop condition.
    let mut t = scenario::scan_array();
    assert_eq!(values(&mut t, "(0..3)@(-1)"), vec!["0", "1", "2", "3"]);
    assert_eq!(values(&mut t, "(-3..3)@(-1)"), vec!["-3", "-2"]);
    assert_eq!(values(&mut t, "(0)@(-1)"), vec!["0"]);
}
