//! Experiment E1: the paper-transcript conformance suite.
//!
//! Every `gdb> duel …` transcript in the paper is reproduced against the
//! debuggee states of `duel_target::scenario`. Where the paper's own
//! transcripts are internally inconsistent (documented in
//! EXPERIMENTS.md §E1), the test asserts the self-consistent behaviour
//! and a comment records the divergence.

use duel::core::Session;
use duel::target::{scenario, Target};

fn lines(t: &mut dyn Target, src: &str) -> Vec<String> {
    let mut s = Session::new(t);
    s.eval_lines(src)
        .unwrap_or_else(|e| panic!("`{src}` failed: {e}"))
}

fn values(t: &mut dyn Target, src: &str) -> Vec<String> {
    let mut s = Session::new(t);
    let out = s
        .eval(src)
        .unwrap_or_else(|e| panic!("`{src}` failed: {e}"));
    out.iter()
        .filter_map(|l| match l {
            duel::core::OutputLine::Value { value, .. } => Some(value.clone()),
            _ => None,
        })
        .collect()
}

// ---- Design-section warm-ups -------------------------------------------

#[test]
fn design_intro_examples() {
    let mut t = scenario::scan_array();
    // "(1..3)+(5,9) prints 6 10 7 11 8 12".
    assert_eq!(
        values(&mut t, "(1..3)+(5,9)"),
        vec!["6", "10", "7", "11", "8", "12"]
    );
}

#[test]
fn syntax_section_arithmetic_transcripts() {
    let mut t = scenario::scan_array();
    // gdb> duel (1,2,5)*4+(10,200)  ⇒  14 204 18 208 30 220
    assert_eq!(
        values(&mut t, "(1,2,5)*4+(10,200)"),
        vec!["14", "204", "18", "208", "30", "220"]
    );
    // gdb> duel (3,11)+(5..7)  ⇒  8 9 10 16 17 18
    assert_eq!(
        values(&mut t, "(3,11)+(5..7)"),
        vec!["8", "9", "10", "16", "17", "18"]
    );
}

#[test]
fn to_with_generator_operands() {
    // (to (alternate 1 5) (alternate 5 10)) ⇒ 1..5, 1..10, 5, 5..10.
    let mut t = scenario::scan_array();
    let got = values(&mut t, "(1,5)..(5,10)");
    let expect: Vec<String> = (1..=5)
        .chain(1..=10)
        .chain(5..=5)
        .chain(5..=10)
        .map(|v| v.to_string())
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn pure_c_print_equivalence() {
    // gdb> duel 1 + (double)3/2  ⇒  2.500
    let mut t = scenario::scan_array();
    assert_eq!(lines(&mut t, "1 + (double)3/2"), vec!["2.500"]);
}

// ---- The array searches --------------------------------------------------

#[test]
fn search_with_filters() {
    let mut t = scenario::scan_array();
    assert_eq!(
        lines(&mut t, "x[1..4,8,12..50] >? 5 <? 10"),
        vec!["x[3] = 7", "x[18] = 9", "x[47] = 6"]
    );
}

#[test]
fn search_with_eq_range_formulation() {
    // "x[1..4,8,12..50] ==? (6..9) is another formulation of the same
    // search."
    let mut t = scenario::scan_array();
    assert_eq!(
        lines(&mut t, "x[1..4,8,12..50] ==? (6..9)"),
        vec!["x[3] = 7", "x[18] = 9", "x[47] = 6"]
    );
}

#[test]
fn plain_c_equality_prints_all() {
    let mut t = scenario::scan_array();
    assert_eq!(
        lines(&mut t, "x[1..3] == 7"),
        vec!["x[1]==7 = 0", "x[2]==7 = 0", "x[3]==7 = 1"]
    );
}

// ---- The hash-table transcripts ------------------------------------------

#[test]
fn heads_with_scope_over_five() {
    let mut t = scenario::hash_table_basic();
    assert_eq!(
        lines(&mut t, "(hash[..1024] !=? 0)->scope >? 5"),
        vec!["hash[42]->scope = 7", "hash[529]->scope = 8"]
    );
}

#[test]
fn clearing_first_symbol_scopes() {
    // gdb> duel hash[0..1023]->scope = 0 ;
    // "clears the scope field of the first symbol on each list … This
    // example produces no output."
    let mut t = scenario::hash_table_full();
    assert!(lines(&mut t, "hash[0..1023]->scope = 0 ;").is_empty());
    // Every head's scope is now zero.
    assert!(lines(&mut t, "(hash[..1024] !=? 0)->scope >? 0").is_empty());
}

#[test]
fn four_equivalent_formulations() {
    // The four formulations from the Syntax section print the same
    // scope fields (7 and 8 on the basic table).
    let forms = [
        "(hash[..1024] !=? 0)->scope >? 5",
        "int i; for (i = 0; i < 1024; i++) \
         if (hash[i] && hash[i]->scope > 5) hash[i]->scope",
        "int i; for (i = 0; i < 1024; i++) \
         if (hash[i]) hash[i]->scope >? 5",
        "int i; for (i = 0; i < 1024; i++) \
         (hash[i] !=? 0)->scope >? 5",
    ];
    for form in forms {
        let mut t = scenario::hash_table_basic();
        assert_eq!(values(&mut t, form), vec!["7", "8"], "formulation `{form}`");
    }
}

#[test]
fn printf_formulation_matches() {
    let mut t = scenario::hash_table_basic();
    let got = lines(
        &mut t,
        "int i; for (i = 0; i < 1024; i++) \
         if (hash[i] != 0) if (hash[i]->scope > 5) \
         printf(\"hash[%d]->scope = %d\\n\", i, hash[i]->scope);",
    );
    assert_eq!(got, vec!["hash[42]->scope = 7", "hash[529]->scope = 8"]);
}

#[test]
fn field_alternation() {
    // gdb> duel hash[1,9]->(scope,name)
    let mut t = scenario::hash_table_basic();
    let out = lines(&mut t, "hash[1,9]->(scope,name)");
    assert_eq!(out.len(), 4);
    assert_eq!(out[0], "hash[1]->scope = 3");
    assert!(
        out[1].starts_with("hash[1]->name = ") && out[1].ends_with("\"x\""),
        "{}",
        out[1]
    );
    assert_eq!(out[2], "hash[9]->scope = 2");
    assert!(out[3].ends_with("\"abc\""), "{}", out[3]);
}

#[test]
fn alias_chain_clears_scopes() {
    // x:= hash[..1024] !=? 0 => y:= x->scope => y = 0
    let mut t = scenario::hash_table_basic();
    {
        let mut s = Session::new(&mut t);
        s.eval("x:= hash[..1024] !=? 0 => y:= x->scope => y = 0 ;")
            .unwrap();
    }
    assert!(lines(&mut t, "(hash[..1024] !=? 0)->scope >? 0").is_empty());
}

#[test]
fn conditional_field_selection_with_alias() {
    let mut t = scenario::hash_table_basic();
    let out = lines(&mut t, "x:= hash[..1024] !=? 0 => x->(if (scope > 5) name)");
    assert_eq!(out.len(), 2);
    assert!(out[0].ends_with("\"deep\""), "{}", out[0]);
    assert!(out[1].ends_with("\"top\""), "{}", out[1]);
}

#[test]
fn underscore_guards_null_buckets() {
    // hash[..1024]->(if (_ && scope > 5) name) must not dereference the
    // NULL buckets.
    let mut t = scenario::hash_table_basic();
    let out = lines(&mut t, "hash[..1024]->(if (_ && scope > 5) name)");
    assert_eq!(out.len(), 2);
    assert!(out[0].contains("name"), "{}", out[0]);
    assert!(out[0].ends_with("\"deep\""), "{}", out[0]);
}

// ---- The out-of-range searches -------------------------------------------

#[test]
fn alias_display_shows_alias_name() {
    // gdb> duel y:= x[..10] => if (y < 0 || y > 100) y
    let mut t = scenario::range_array();
    assert_eq!(
        lines(&mut t, "y:= x[..10] => if (y < 0 || y > 100) y"),
        vec!["y = -9", "y = 120"]
    );
}

#[test]
fn underscore_display_shows_derivation() {
    // gdb> duel x[..10].if (_ < 0 || _ > 100) _
    let mut t = scenario::range_array();
    assert_eq!(
        lines(&mut t, "x[..10].if (_ < 0 || _ > 100) _"),
        vec!["x[3] = -9", "x[8] = 120"]
    );
}

#[test]
fn index_alias_recovers_position() {
    // y:= x[j := ..10] => if (y < 0 || y > 100) x[{j}]
    let mut t = scenario::range_array();
    assert_eq!(
        lines(&mut t, "y:= x[j := ..10] => if (y < 0 || y > 100) x[{j}]"),
        vec!["x[3] = -9", "x[8] = 120"]
    );
}

// ---- Sequencing and braces ------------------------------------------------

#[test]
fn sequence_keeps_last_alias_value() {
    // gdb> duel i := 1..3; i + 4  ⇒  i+4 = 7
    let mut t = scenario::scan_array();
    assert_eq!(lines(&mut t, "i := 1..3; i + 4"), vec!["i+4 = 7"]);
}

#[test]
fn imply_iterates_body() {
    // gdb> duel i := 1..3 => {i} + 4
    let mut t = scenario::scan_array();
    assert_eq!(
        lines(&mut t, "i := 1..3 => {i} + 4"),
        vec!["1+4 = 5", "2+4 = 6", "3+4 = 7"]
    );
}

#[test]
fn for_with_if_expression_body() {
    // gdb> duel int i; for (i = 0; i < 9; i++) 4 + if (i%3==0) i*5
    let mut t = scenario::scan_array();
    assert_eq!(
        lines(&mut t, "int i; for (i = 0; i < 9; i++) 4 + if (i%3==0) i*5"),
        vec!["4+i*5 = 4", "4+i*5 = 19", "4+i*5 = 34"]
    );
}

#[test]
fn braces_substitute_values() {
    // gdb> duel int i; for (i = 0; i < 9; i++) 4 + if (i%3 == 0) {i}*5
    let mut t = scenario::scan_array();
    assert_eq!(
        lines(
            &mut t,
            "int i; for (i = 0; i < 9; i++) 4 + if (i%3 == 0) {i}*5"
        ),
        vec!["4+0*5 = 4", "4+3*5 = 19", "4+6*5 = 34"]
    );
}

// ---- List and tree expansion -----------------------------------------------

#[test]
fn dfs_list_walk_with_expanded_syms() {
    // gdb> duel hash[0]-->next->scope — the paper shows the symbolic
    // paths fully expanded at up to three `->next` steps.
    let mut t = scenario::hash_table_basic();
    assert_eq!(
        lines(&mut t, "hash[0]-->next->scope"),
        vec![
            "hash[0]->scope = 4",
            "hash[0]->next->scope = 3",
            "hash[0]->next->next->scope = 2",
            "hash[0]->next->next->next->scope = 1",
        ]
    );
}

#[test]
fn dfs_generates_list_elements() {
    let mut t = scenario::linked_lists();
    // L has 12 nodes.
    assert_eq!(values(&mut t, "#/(L-->next)"), vec!["12"]);
    assert_eq!(values(&mut t, "#/(head-->next)"), vec!["8"]);
}

#[test]
fn duplicate_value_query() {
    // The Introduction's query: L-->next->(value ==? next-->next->value)
    let mut t = scenario::linked_lists();
    let out = lines(&mut t, "L-->next->(value ==? next-->next->value)");
    assert_eq!(out, vec!["L-->next[[4]]->value = 27"]);
}

#[test]
fn tree_preorder_keys() {
    // gdb> duel root-->(left,right)->key
    //
    // NOTE: the paper's transcript lists `root->left->right` before
    // `root->left->left`, contradicting its own claim that children are
    // stacked in reverse "so that the nodes are visited in the expected
    // order" (preorder). We produce true preorder; see EXPERIMENTS.md.
    let mut t = scenario::binary_tree();
    assert_eq!(
        lines(&mut t, "root-->(left,right)->key"),
        vec![
            "root->key = 9",
            "root->left->key = 3",
            "root->left->left->key = 4",
            "root->left->right->key = 5",
            "root->right->key = 12",
        ]
    );
}

#[test]
fn tree_guided_path() {
    // The paper prints the path to the node holding 5. Its transcript
    // writes the comparisons flipped relative to the tree it defines;
    // with the tree as given, the descent must go left when the key is
    // larger. See EXPERIMENTS.md §E1.
    let mut t = scenario::binary_tree();
    assert_eq!(
        lines(
            &mut t,
            "root-->(if (key > 5) left else if (key < 5) right)->key"
        ),
        vec![
            "root->key = 9",
            "root->left->key = 3",
            "root->left->right->key = 5",
        ]
    );
}

#[test]
fn sortedness_check_finds_violation() {
    // gdb> duel hash[..1024]-->next-> if (next) scope <? next->scope
    //   ⇒ hash[287]-->next[[8]]->scope = 5
    let mut t = scenario::hash_table_sorted_violation();
    assert_eq!(
        lines(
            &mut t,
            "hash[..1024]-->next-> if (next) scope <? next->scope"
        ),
        vec!["hash[287]-->next[[8]]->scope = 5"]
    );
}

#[test]
fn bfs_visits_level_order() {
    // `-->>` (extension): breadth-first visits 9, 3, 12, 4, 5.
    let mut t = scenario::binary_tree();
    assert_eq!(
        values(&mut t, "root-->>(left,right)->key"),
        vec!["9", "3", "12", "4", "5"]
    );
}

// ---- Selection --------------------------------------------------------------

#[test]
fn select_from_products() {
    // gdb> duel ((1..9)*(1..9))[[52,74]]  ⇒  6*8 = 48, 9*3 = 27
    let mut t = scenario::scan_array();
    assert_eq!(
        lines(&mut t, "((1..9)*(1..9))[[52,74]]"),
        vec!["6*8 = 48", "9*3 = 27"]
    );
}

#[test]
fn select_from_list_walk() {
    // gdb> duel head-->next->value[[3,5]] — the paper compresses at
    // three steps here; our default threshold is 4, so this test runs
    // with threshold 2 to match the transcript exactly.
    let mut t = scenario::linked_lists();
    let mut s = Session::new(&mut t);
    s.options.compress_threshold = 2;
    assert_eq!(
        s.eval_lines("head-->next->value[[3,5]]").unwrap(),
        vec![
            "head-->next[[3]]->value = 33",
            "head-->next[[5]]->value = 29",
        ]
    );
}

#[test]
fn count_reduction() {
    // gdb> duel #/(root-->(left,right)->key)  ⇒  5
    let mut t = scenario::binary_tree();
    assert_eq!(lines(&mut t, "#/(root-->(left,right)->key)"), vec!["5"]);
}

#[test]
fn duplicate_detection_via_index_aliases() {
    // gdb> duel L-->next#i->value ==? L-->next#j->value =>
    //        if (i < j) L-->next[[i,j]]->value
    let mut t = scenario::linked_lists();
    assert_eq!(
        lines(
            &mut t,
            "L-->next#i->value ==? L-->next#j->value => \
             if (i < j) L-->next[[i,j]]->value"
        ),
        vec!["L-->next[[4]]->value = 27", "L-->next[[9]]->value = 27",]
    );
}

// ---- Termination (`@`) -------------------------------------------------------

#[test]
fn until_string_terminator() {
    // s[0..999]@(_=='\0') produces s[0], s[1], … before the NUL.
    let mut t = scenario::argv_strings();
    let out = lines(&mut t, "s[0..999]@(_=='\\0')");
    assert_eq!(
        out,
        vec![
            "s[0] = 'h'",
            "s[1] = 'e'",
            "s[2] = 'l'",
            "s[3] = 'l'",
            "s[4] = 'o'",
        ]
    );
}

#[test]
fn until_null_pointer_terminator() {
    // argv[0..]@0 generates the strings in argv.
    let mut t = scenario::argv_strings();
    let out = lines(&mut t, "argv[0..]@0");
    assert_eq!(out.len(), 3);
    assert!(out[0].starts_with("argv[0] = ") && out[0].ends_with("\"prog\""));
    assert!(out[1].ends_with("\"-v\""));
    assert!(out[2].ends_with("\"input.c\""));
}

// ---- Calls with generator arguments ------------------------------------------

#[test]
fn printf_cross_product() {
    // gdb> duel printf("%d %d, ", (3,4), 5..7)
    //   ⇒ 3 5, 3 6, 3 7, 4 5, 4 6, 4 7,
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    let out = s.eval("printf(\"%d %d, \", (3,4), 5..7)").unwrap();
    let stdout: String = out
        .iter()
        .filter_map(|l| match l {
            duel::core::OutputLine::Stdout(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(stdout, "3 5, 3 6, 3 7, 4 5, 4 6, 4 7, ");
}

// ---- Errors -------------------------------------------------------------------

#[test]
fn illegal_memory_error_format() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    let err = s.eval("*(int *)0x999999").unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.starts_with("Illegal memory reference in"),
        "unexpected message: {msg}"
    );
    assert!(msg.contains("0x999999"), "{msg}");
}

#[test]
fn errors_carry_symbolic_values() {
    // A walk through a list whose pointers go wild stops; but an
    // explicit dereference reports the offending operand symbolically.
    let mut t = scenario::linked_lists();
    let mut s = Session::new(&mut t);
    let err = s.eval("*(int *)(L->value)").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("Illegal memory reference"), "{msg}");
    assert!(msg.contains("(int *)"), "{msg}");
}
