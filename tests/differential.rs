//! Differential testing: random generator expressions are rendered to
//! DUEL source and simultaneously evaluated by an independent Rust
//! oracle; the produced value sequences must match exactly.
//!
//! The grammar covers the pure-generator core of the language — ranges,
//! alternation, arithmetic lifting, filters, imply, selection, count and
//! sum — which is where the paper's coroutine evaluation scheme does all
//! its work.

use duel::core::Session;
use duel::target::scenario;
use proptest::prelude::*;

/// A small generator-expression AST with a reference semantics.
#[derive(Clone, Debug)]
enum G {
    Const(i8),
    Range(i8, i8),
    Alt(Box<G>, Box<G>),
    Add(Box<G>, Box<G>),
    Mul(Box<G>, Box<G>),
    FilterGt(Box<G>, i8),
    Imply(Box<G>, Box<G>),
    Select(Box<G>, Vec<u8>),
    Count(Box<G>),
    Sum(Box<G>),
    Until(Box<G>, i8),
}

impl G {
    /// Renders as DUEL concrete syntax (fully parenthesized).
    fn render(&self) -> String {
        match self {
            G::Const(v) => format!("({v})"),
            G::Range(a, b) => format!("(({a})..({b}))"),
            G::Alt(a, b) => format!("({},{})", a.render(), b.render()),
            G::Add(a, b) => format!("({}+{})", a.render(), b.render()),
            G::Mul(a, b) => format!("({}*{})", a.render(), b.render()),
            G::FilterGt(a, k) => format!("({} >? ({k}))", a.render()),
            G::Imply(a, b) => {
                format!("({} => {})", a.render(), b.render())
            }
            G::Select(a, idx) => {
                let parts: Vec<String> = idx.iter().map(|i| i.to_string()).collect();
                format!("({}[[{}]])", a.render(), parts.join(","))
            }
            G::Count(a) => format!("(#/{})", a.render()),
            G::Sum(a) => format!("(+/{})", a.render()),
            G::Until(a, k) => format!("({}@({k}))", a.render()),
        }
    }

    /// The reference semantics, mirroring the paper's operational
    /// definitions over eager lists.
    fn eval(&self) -> Vec<i64> {
        match self {
            G::Const(v) => vec![*v as i64],
            G::Range(a, b) => (*a as i64..=*b as i64).collect(),
            G::Alt(a, b) => {
                let mut v = a.eval();
                v.extend(b.eval());
                v
            }
            G::Add(a, b) => {
                // All combinations, left operand slowest — C int
                // wrapping.
                let bs = b.eval();
                a.eval()
                    .into_iter()
                    .flat_map(|x| {
                        bs.iter()
                            .map(move |y| (x as i32).wrapping_add(*y as i32) as i64)
                    })
                    .collect()
            }
            G::Mul(a, b) => {
                let bs = b.eval();
                a.eval()
                    .into_iter()
                    .flat_map(|x| {
                        bs.iter()
                            .map(move |y| (x as i32).wrapping_mul(*y as i32) as i64)
                    })
                    .collect()
            }
            G::FilterGt(a, k) => a.eval().into_iter().filter(|v| *v > *k as i64).collect(),
            G::Imply(a, b) => {
                let bs = b.eval();
                a.eval().into_iter().flat_map(|_| bs.clone()).collect()
            }
            G::Select(a, idx) => {
                let vals = a.eval();
                idx.iter()
                    .filter_map(|i| vals.get(*i as usize).copied())
                    .collect()
            }
            G::Count(a) => vec![a.eval().len() as i64],
            G::Sum(a) => vec![a.eval().iter().sum()],
            // e@k: values of e up to (excluding) the first equal to k.
            G::Until(a, k) => a
                .eval()
                .into_iter()
                .take_while(|v| *v != *k as i64)
                .collect(),
        }
    }

    /// Number of values this expression produces (guards test size).
    fn cardinality(&self) -> usize {
        self.eval().len()
    }
}

/// Proptest strategy for the AST; `depth` bounds recursion.
fn strategy(depth: u32) -> BoxedStrategy<G> {
    if depth == 0 {
        prop_oneof![
            (-9i8..=9).prop_map(G::Const),
            (-6i8..=6, -6i8..=6).prop_map(|(a, b)| G::Range(a, b)),
        ]
        .boxed()
    } else {
        let sub = strategy(depth - 1);
        prop_oneof![
            (-9i8..=9).prop_map(G::Const),
            (-6i8..=6, -6i8..=6).prop_map(|(a, b)| G::Range(a, b)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| G::Alt(a.into(), b.into())),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| G::Add(a.into(), b.into())),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| G::Mul(a.into(), b.into())),
            (sub.clone(), -6i8..=6).prop_map(|(a, k)| G::FilterGt(a.into(), k)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| G::Imply(a.into(), b.into())),
            (sub.clone(), prop::collection::vec(0u8..20, 1..4))
                .prop_map(|(a, idx)| G::Select(a.into(), idx)),
            sub.clone().prop_map(|a| G::Count(a.into())),
            sub.clone().prop_map(|a| G::Sum(a.into())),
            (sub, -6i8..=6).prop_map(|(a, k)| G::Until(a.into(), k)),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128, ..ProptestConfig::default()
    })]

    #[test]
    fn duel_matches_the_oracle(g in strategy(3)) {
        // Bound the work so pathological products stay fast.
        prop_assume!(g.cardinality() <= 4000);
        let want = g.eval();
        let src = g.render();
        let mut t = scenario::scan_array();
        let mut s = Session::new(&mut t);
        s.options.max_values = 100_000;
        let got: Vec<i64> = s
            .eval(&src)
            .unwrap_or_else(|e| panic!("`{src}` failed: {e}"))
            .into_iter()
            .filter_map(|l| match l {
                duel::core::OutputLine::Value { value, .. } => {
                    Some(value.parse::<i64>().expect("int value"))
                }
                _ => None,
            })
            .collect();
        prop_assert_eq!(got, want, "expression `{}`", src);
    }

    /// Vectored and scalar read paths are observationally identical:
    /// same buffers, same per-range results, same resident cache pages
    /// — on arbitrary range sets mixing in-arena, edge-straddling, and
    /// wholly unmapped spans.
    #[test]
    fn vectored_reads_match_scalar_reads(
        ranges in prop::collection::vec((0u64..400, 1u64..48), 1..12),
        page_exp in 4u32..9,
    ) {
        use duel::target::{CacheConfig, CachedTarget, ReadRange, Target};
        let page_size = 1u64 << page_exp;
        // scan_array: 240 readable bytes at the arena base; offsets up
        // to 400 reach past the edge.
        let mk = || {
            CachedTarget::with_config(
                scenario::scan_array(),
                CacheConfig { page_size, ..CacheConfig::default() },
            )
        };
        let mut scalar_t = mk();
        let mut vector_t = mk();
        let base = scalar_t.get_variable("x").unwrap().addr;
        vector_t.get_variable("x").unwrap();

        let mut scalar_bufs: Vec<Vec<u8>> =
            ranges.iter().map(|&(_, len)| vec![0u8; len as usize]).collect();
        let scalar_results: Vec<_> = ranges
            .iter()
            .zip(scalar_bufs.iter_mut())
            .map(|(&(off, _), buf)| scalar_t.get_bytes(base + off, buf))
            .collect();

        let mut vector_bufs: Vec<Vec<u8>> =
            ranges.iter().map(|&(_, len)| vec![0u8; len as usize]).collect();
        let mut reads: Vec<ReadRange<'_>> = ranges
            .iter()
            .zip(vector_bufs.iter_mut())
            .map(|(&(off, _), buf)| ReadRange::new(base + off, buf))
            .collect();
        let vector_results = vector_t.get_bytes_multi(&mut reads);

        prop_assert_eq!(&scalar_results, &vector_results);
        // Failed scalar reads may leave partial bytes behind; only
        // compare buffers whose reads succeeded.
        for (i, r) in scalar_results.iter().enumerate() {
            if r.is_ok() {
                prop_assert_eq!(&scalar_bufs[i], &vector_bufs[i], "range {}", i);
            }
        }
        prop_assert_eq!(scalar_t.resident_pages(), vector_t.resident_pages());
    }

    /// The I/O-actor pipeline is observationally identical to the
    /// synchronous tower: same rendered output, same trailing error,
    /// same resident cache pages, and the same backend op/injection
    /// counts — over random contiguous scans, prefetch window sizes,
    /// page sizes, and seeded chaos campaigns. The towers are
    /// `Retry<Cached<Async<Chaos<Sim>>>>` with the actor on vs off.
    #[test]
    fn async_pipeline_matches_the_synchronous_tower(
        spans in prop::collection::vec((0u16..60, 1u16..60), 1..4),
        k in -5i16..10,
        page_exp in 4u32..7,
        window in 1usize..5,
        // events == 0 means no chaos campaign at all.
        chaos_seed in 0u64..1_000_000u64,
        chaos_events in 0usize..4,
        chaos_span in 20u64..200,
    ) {
        use duel::target::{
            AsyncTarget, CacheConfig, CachedTarget, ChaosTarget, RetryPolicy, RetryTarget,
        };
        let idx: Vec<String> = spans
            .iter()
            .map(|&(a, n)| format!("{}..{}", a, a + n))
            .collect();
        let src = format!("x[{}] >? ({k})", idx.join(","));
        let opts = duel::core::EvalOptions {
            prefetch: true,
            prefetch_window: window,
            error_values: true,
            ..Default::default()
        };
        let run = |pipeline: bool| {
            let gate = ChaosTarget::new(scenario::scan_array());
            let h = gate.handle();
            if chaos_events > 0 {
                h.campaign(chaos_seed, chaos_events, chaos_span);
            }
            let actor = if pipeline {
                AsyncTarget::spawned(gate)
            } else {
                AsyncTarget::new(gate)
            };
            let mut t = RetryTarget::with_policy(
                CachedTarget::with_config(
                    actor,
                    CacheConfig { page_size: 1 << page_exp, ..CacheConfig::default() },
                ),
                RetryPolicy::fast(1),
            );
            let (lines, err) = duel::core::oneshot_lines(&mut t, &src, &opts);
            let pages = t.inner().resident_pages();
            (lines, err.map(|e| e.to_string()), pages, h.ops(), h.injected())
        };
        let sync = run(false);
        let piped = run(true);
        prop_assert_eq!(sync, piped, "expression `{}`", src);
    }
}
