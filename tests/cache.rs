//! Cache-correctness integration suite: [`duel::target::CachedTarget`]
//! must be invisible to evaluation — identical output lines, fewer
//! backend round-trips — and must stay correct across writes, target
//! resumes (epoch bumps), and injected faults.

use duel::core::{EvalOptions, Session};
use duel::target::{
    scenario, CacheConfig, CachedTarget, FaultConfig, FaultTarget, RetryPolicy, RetryTarget,
    SimTarget, Target,
};

fn lines(t: &mut dyn Target, expr: &str) -> Vec<String> {
    let mut s = Session::with_options(
        t,
        EvalOptions {
            error_values: true,
            ..EvalOptions::default()
        },
    );
    s.eval_lines(expr)
        .unwrap_or_else(|e| panic!("`{expr}` failed: {e}"))
}

// ---- differential: cached output is byte-identical ---------------------

#[test]
fn cached_and_uncached_agree_across_scenarios() {
    type Case = (fn() -> SimTarget, &'static [&'static str]);
    let cases: &[Case] = &[
        (
            scenario::scan_array,
            &["x[..60]", "x[1..4,8,12..50] >? 5 <? 10", "x[3..9]+1"],
        ),
        (
            scenario::linked_lists,
            &["head-->next->value", "#/(L-->next)", "L-->next[[4]]->value"],
        ),
        (
            scenario::hash_table_basic,
            &["#/(hash[..1024]-->next)", "hash[..30]-->next->scope"],
        ),
        (scenario::binary_tree, &["root-->(left,right)->key"]),
    ];
    for (make, exprs) in cases {
        for expr in *exprs {
            let mut plain = make();
            let want = lines(&mut plain, expr);
            let mut cached = CachedTarget::new(make());
            let got = lines(&mut cached, expr);
            assert_eq!(got, want, "`{expr}` differs under caching");
            assert!(
                cached.stats().page_hits > 0 || cached.stats().backend_reads == 0,
                "`{expr}` never hit the cache: {:?}",
                cached.stats()
            );
        }
    }
}

#[test]
fn coalescing_cuts_backend_reads_at_least_5x() {
    for (make, expr) in [
        (
            scenario::bench_array(256, 42),
            "x[..256] >? 5 <? 10".to_string(),
        ),
        (
            scenario::bench_list(128, 7),
            "head-->next->value".to_string(),
        ),
    ] {
        let mut uncached = CachedTarget::with_config(make.clone(), CacheConfig::disabled());
        let want = lines(&mut uncached, &expr);
        let mut cached = CachedTarget::new(make);
        let got = lines(&mut cached, &expr);
        assert_eq!(got, want, "`{expr}`");
        let (u, c) = (
            uncached.stats().backend_reads,
            cached.stats().backend_reads.max(1),
        );
        assert!(
            u >= 5 * c,
            "`{expr}`: only {u} uncached vs {c} cached reads"
        );
    }
}

// ---- write-through visibility ------------------------------------------

#[test]
fn duel_assignment_is_visible_through_the_cache() {
    let mut t = CachedTarget::new(scenario::scan_array());
    assert_eq!(lines(&mut t, "x[3..3]"), vec!["x[3] = 7"]);
    assert!(lines(&mut t, "x[3] = 55 ;").is_empty());
    // Same page, already cached: the write must have been patched in.
    assert_eq!(lines(&mut t, "x[3..3]"), vec!["x[3] = 55"]);
    assert_eq!(lines(&mut t, "x[2..5]").len(), 4);
    // And the backend really holds the new value.
    let x = t.get_variable("x").unwrap();
    let mut buf = [0u8; 4];
    t.inner_mut().get_bytes(x.addr + 12, &mut buf).unwrap();
    assert_eq!(i32::from_le_bytes(buf), 55);
}

// ---- epoch invalidation after a simulated resume -----------------------

#[test]
fn epoch_bump_discards_state_from_the_previous_stop() {
    let mut t = CachedTarget::new(scenario::scan_array());
    assert_eq!(lines(&mut t, "x[3..3]"), vec!["x[3] = 7"]);
    // "Resume" the debuggee: memory changes behind the cache's back.
    let x = t.inner_mut().get_variable("x").unwrap();
    t.inner_mut()
        .put_bytes(x.addr + 12, &(99i32).to_le_bytes())
        .unwrap();
    assert_eq!(
        lines(&mut t, "x[3..3]"),
        vec!["x[3] = 7"],
        "within one stop, repeated reads are stable"
    );
    t.invalidate_all();
    assert_eq!(lines(&mut t, "x[3..3]"), vec!["x[3] = 99"]);
    assert_eq!(t.epoch(), 1);
    assert_eq!(t.stats().invalidations, 1);
}

// ---- composition with fault injection and retry ------------------------

#[test]
fn transient_faults_cannot_poison_pages() {
    // The first backend operation fails transiently. The cache must
    // not retain anything from that failed fetch; whatever does get
    // cached afterwards must agree with the debuggee.
    let flaky = FaultTarget::new(scenario::scan_array(), FaultConfig::transient(1));
    let mut t = CachedTarget::new(flaky);
    let x = t.get_variable("x").unwrap();
    let mut buf = [0u8; 4];
    // First access: the page fetch eats the injected failure, so the
    // cache falls back to an exact, uncached read.
    t.get_bytes(x.addr + 12, &mut buf).unwrap();
    assert_eq!(i32::from_le_bytes(buf), 7);
    // Next access fetches and caches the page; contents must be sound.
    t.get_bytes(x.addr + 16, &mut buf).unwrap();
    assert_eq!(i32::from_le_bytes(buf), 104);
    t.get_bytes(x.addr + 12, &mut buf).unwrap();
    assert_eq!(i32::from_le_bytes(buf), 7);
}

#[test]
fn truncating_backend_degrades_to_exact_reads() {
    // A half-dead stub that refuses reads over 16 bytes: page fetches
    // (64B) always fail, exact element reads succeed. The cache must
    // stay transparent.
    let cfg = FaultConfig {
        truncate_reads_above: Some(16),
        ..FaultConfig::default()
    };
    let stub = FaultTarget::new(scenario::scan_array(), cfg);
    let mut t = CachedTarget::new(stub);
    assert_eq!(
        lines(&mut t, "x[1..4,8,12..50] >? 5 <? 10"),
        vec!["x[3] = 7", "x[18] = 9", "x[47] = 6"]
    );
}

#[test]
fn full_stack_retry_over_cache_over_faults() {
    // The documented production order: Retry(Cache(Fault(backend))).
    let flaky = FaultTarget::new(scenario::scan_array(), FaultConfig::transient(2));
    let cached = CachedTarget::new(flaky);
    let mut t = RetryTarget::with_policy(cached, RetryPolicy::fast(5));
    {
        let mut s = Session::new(&mut t);
        assert_eq!(s.eval_lines("x[3..3]").unwrap(), vec!["x[3] = 7"]);
    }
    assert!(t.retries() >= 1, "transients absorbed above the cache");
    // The cache underneath holds only sound pages.
    let mut buf = [0u8; 4];
    let x = t.get_variable("x").unwrap();
    t.get_bytes(x.addr + 18 * 4, &mut buf).unwrap();
    assert_eq!(i32::from_le_bytes(buf), 9);
}

#[test]
fn poisoned_ranges_stay_poisoned_through_the_cache() {
    // A permanently bad page must keep faulting (per access), while
    // its neighbours are served -- and cached -- normally.
    let t = scenario::scan_array();
    let mut probe = t.clone();
    let x = probe.get_variable("x").unwrap();
    let bad = FaultTarget::new(t, FaultConfig::poisoned(x.addr + 12, 4));
    let mut t = CachedTarget::new(bad);
    let out = lines(&mut t, "x[2..5]");
    assert_eq!(out.len(), 4);
    assert!(out[1].contains("error"), "{out:?}");
    assert!(
        out[0].ends_with("102") && out[2].ends_with("104"),
        "{out:?}"
    );
    // Repeat: identical answers from the now-warm cache.
    assert_eq!(lines(&mut t, "x[2..5]"), out);
}
