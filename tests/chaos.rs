//! Chaos campaigns against the full CLI tower.
//!
//! Property: under arbitrary scripted fault campaigns (kill / hang /
//! garble / revive at random operation counts), the REPL session never
//! panics and every expression either yields values or a symbolic
//! error — the supervisor may serve stale reads or fail fast, but the
//! session itself stays alive and can keep evaluating.
//!
//! Deterministic companions: a backend killed mid-`.record` still
//! finalizes a well-formed capture (parseable, footer present), and a
//! revived backend recovers to byte-identical output after
//! `.health reconnect`.

use duel::cli::Repl;
use duel::target::capture::Capture;
use duel::target::{attribution_coverage, SpanKind};
use proptest::prelude::*;

/// Pure-read queries that always produce at least one output line on a
/// healthy backend (values) and at least an error line on a sick one.
const BATTERY: &[&str] = &[
    "x[..5]",
    "x[1..4,8,12..50] >? 5 <? 10",
    "#/(head-->next)",
    "root-->(left,right)->key",
];

/// Runs one line and asserts the session-survival invariants: the REPL
/// wants to keep going, and no panic escaped the evaluator (a caught
/// panic would print `internal error: ...`).
fn step(r: &mut Repl, line: &str, log: &mut String) -> Result<String, TestCaseError> {
    let mut out = String::new();
    let alive = r.handle(line, &mut out);
    log.push_str(&format!("> {line}\n{out}"));
    prop_assert!(alive, "session gave up on `{line}`:\n{log}");
    prop_assert!(
        !out.contains("internal error:"),
        "panic escaped on `{line}`:\n{log}"
    );
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    #[test]
    fn scripted_campaigns_never_kill_the_session(
        seed in 0u64..u64::MAX,
        events in 0usize..8,
        span in 1u64..400,
    ) {
        let mut r = Repl::new();
        let mut log = String::new();
        // Keep failing evaluations cheap: the op deadline clamps retry
        // backoff to the evaluation's own time budget.
        step(&mut r, ".set timeout 40", &mut log)?;
        let chaos = r.chaos_handle().expect("sim backend has a chaos gate");
        let script = chaos.campaign(seed, events, span);
        let scripted = script.len();
        chaos.load_script(script);

        for round in 0..3 {
            for q in BATTERY {
                let out = step(&mut r, q, &mut log)?;
                prop_assert!(
                    !out.is_empty(),
                    "`{q}` (round {round}) yielded neither values nor an \
                     error:\n{log}"
                );
            }
            // Dot-commands must stay available mid-campaign.
            step(&mut r, ".stats", &mut log)?;
        }
        step(&mut r, ".health", &mut log)?;
        prop_assert!(scripted <= events);
    }

    #[test]
    fn campaigns_with_final_revive_always_recover(seed in 0u64..u64::MAX) {
        let mut r = Repl::new();
        let mut log = String::new();
        step(&mut r, ".set timeout 40", &mut log)?;
        let clean = step(&mut r, "x[..3]", &mut log)?;

        let chaos = r.chaos_handle().unwrap();
        let mut script = chaos.campaign(seed, 4, 50);
        script.retain(|e| e.at_op > 0);
        chaos.load_script(script);
        for q in BATTERY {
            step(&mut r, q, &mut log)?;
        }
        // End of campaign: drop any events that have not fired yet,
        // revive the gate, force recovery, and demand byte-identical
        // output again.
        chaos.load_script(Vec::new());
        chaos.revive();
        let rec = step(&mut r, ".health reconnect", &mut log)?;
        prop_assert!(rec.contains("reconnected"), "{}", log);
        let after = step(&mut r, "x[..3]", &mut log)?;
        prop_assert_eq!(&after, &clean, "post-recovery output diverged:\n{}", log);
        prop_assert!(!after.contains("<stale>"), "{}", log);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, ..ProptestConfig::default()
    })]

    /// Span-attribution invariant under chaos: whatever the fault
    /// campaign does — retries, breaker trips, fast-fails, stale
    /// serves — every wire event the trace ring holds must still chain
    /// through live parent spans to an `eval` root, and the span stack
    /// must be balanced (nothing left open) once the REPL is idle.
    #[test]
    fn span_attribution_survives_chaos_campaigns(
        seed in 0u64..u64::MAX,
        events in 0usize..8,
        span in 1u64..400,
    ) {
        let mut r = Repl::new();
        let mut log = String::new();
        step(&mut r, ".set timeout 40", &mut log)?;
        // Size both rings so nothing is evicted mid-campaign: coverage
        // is only guaranteed for events whose spans are still buffered.
        step(&mut r, ".set trace_buf 65536", &mut log)?;
        step(&mut r, ".trace on", &mut log)?;
        step(&mut r, ".trace spans on", &mut log)?;
        let chaos = r.chaos_handle().expect("sim backend has a chaos gate");
        chaos.load_script(chaos.campaign(seed, events, span));

        for _ in 0..2 {
            for q in BATTERY {
                step(&mut r, q, &mut log)?;
            }
        }

        let snap = r.span_context().snapshot();
        let evs = r.trace_handle().recent_events(usize::MAX);
        let (ok, total) = attribution_coverage(&snap, &evs);
        prop_assert!(total > 0, "campaign recorded no wire events:\n{}", log);
        prop_assert_eq!(
            ok, total,
            "events lost their ancestor chain under chaos:\n{}", log
        );
        prop_assert!(
            snap.open.is_empty(),
            "spans left open at quiescence: {:?}\n{}", snap.open, log
        );
        prop_assert_eq!(snap.dropped, 0, "ring wrapped despite trace_buf:\n{}", log);
        // Retry episodes stay logical: attempts are instants *inside*
        // a retry span, never free-floating retry spans per attempt.
        for s in &snap.spans {
            if s.name == "attempt" {
                let parent = snap.find(s.parent);
                prop_assert!(
                    parent.is_some_and(|p| p.kind == SpanKind::Retry && p.name == "retry"),
                    "attempt {:?} not parented by a retry episode\n{}", s, log
                );
            }
        }
    }
}

/// Breaker-open fast-fails are still causally attributed: once the
/// circuit trips on a killed backend, the supervisor's `fast-fail` /
/// `breaker-trip` marks and the failing wire events must all resolve
/// to the eval that caused them.
#[test]
fn breaker_fast_fails_still_attribute_to_the_causing_eval() {
    let mut r = Repl::new();
    let mut out = String::new();
    r.handle(".set timeout 40", &mut out);
    r.handle(".set trace_buf 65536", &mut out);
    r.handle(".trace on", &mut out);
    r.handle(".trace spans on", &mut out);
    r.handle(".chaos kill", &mut out);
    // Default supervision trips after 3 consecutive transient
    // failures; uncached ranges force every eval onto the dead wire.
    for lo in [20, 30, 40, 50, 60] {
        r.handle(&format!("x[{lo}..{}]", lo + 5), &mut out);
    }

    let snap = r.span_context().snapshot();
    let marks: Vec<_> = snap
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Supervise)
        .collect();
    assert!(
        marks
            .iter()
            .any(|s| s.name == "breaker-trip" || s.name == "fast-fail"),
        "no supervision marks recorded: {marks:?}"
    );
    for m in &marks {
        let chain = snap
            .ancestry(m.id)
            .unwrap_or_else(|| panic!("supervision mark {m:?} has a dead parent"));
        assert!(
            chain.first().is_some_and(|r| r.kind == SpanKind::Root),
            "mark {m:?} does not chain to an eval root"
        );
    }
    let evs = r.trace_handle().recent_events(usize::MAX);
    let (ok, total) = attribution_coverage(&snap, &evs);
    assert!(total > 0);
    assert_eq!(ok, total, "failing wire events lost their attribution");
}

/// Under the prefetch planner, a vectored read is one `multi_read`
/// parent span whose per-range instant children account for exactly
/// the batch: as many `range` children as the batch declared ranges.
#[test]
fn multiread_children_sum_to_the_batch_under_prefetch() {
    let mut r = Repl::new();
    let mut out = String::new();
    r.handle(".set trace_buf 65536", &mut out);
    r.handle(".trace on", &mut out);
    r.handle(".trace spans on", &mut out);
    r.handle(".set prefetch on", &mut out);
    r.handle("#/(head-->next)", &mut out);
    r.handle("x[..30] >? 5", &mut out);

    let snap = r.span_context().snapshot();
    let batches: Vec<_> = snap
        .spans
        .iter()
        .filter(|s| s.name == "multi_read")
        .collect();
    assert!(
        !batches.is_empty(),
        "prefetch produced no vectored reads: {:?}",
        snap.spans
    );
    for b in &batches {
        // Span detail is `"{n} ranges, {total}b"`.
        let declared: usize = b
            .detail
            .split(' ')
            .next()
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unparseable batch detail {:?}", b.detail));
        let children = snap
            .spans
            .iter()
            .filter(|s| s.parent == b.id && s.kind == SpanKind::Range)
            .count();
        assert_eq!(
            children, declared,
            "batch {b:?} declared {declared} ranges but recorded {children} children"
        );
        // And the batch itself chains to the causing eval node.
        let chain = snap.ancestry(b.id).expect("batch has live ancestry");
        assert!(chain.first().is_some_and(|r| r.kind == SpanKind::Root));
        assert!(
            chain.iter().any(|r| r.kind == SpanKind::Node),
            "batch {b:?} is not attributed to an evaluator node"
        );
    }
}

#[test]
fn kill_mid_record_still_finalizes_the_capture() {
    let dir = std::env::temp_dir().join("duel-chaos-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("chaos-{}.jsonl", std::process::id()));
    let path_s = path.display().to_string();

    let mut r = Repl::new();
    let mut out = String::new();
    r.handle(".set timeout 40", &mut out);
    r.handle(&format!(".record {path_s}"), &mut out);
    assert!(out.contains("recording to"), "{out}");
    r.handle("x[..5]", &mut out);

    // The backend dies mid-session; evaluation fails but the recorder
    // must keep its file consistent.
    r.handle(".chaos kill", &mut out);
    r.handle("x[20..30]", &mut out);
    out.clear();
    r.handle(".record stop", &mut out);
    assert!(out.contains("capture finalized"), "{out}");

    let text = std::fs::read_to_string(&path).unwrap();
    let cap = Capture::parse(&text)
        .unwrap_or_else(|e| panic!("capture written under chaos does not parse: {e}\n{text}"));
    assert!(
        cap.footer_types.is_some(),
        "capture footer missing after mid-record kill:\n{text}"
    );
    let last = text.lines().last().unwrap();
    assert!(last.starts_with("{\"footer\":true,"), "{last}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn hung_backend_is_reported_not_waited_on() {
    let mut r = Repl::new();
    let mut out = String::new();
    r.handle(".set timeout 40", &mut out);
    r.handle("x[..3]", &mut out);
    r.handle(".chaos hang", &mut out);
    out.clear();
    // x[20] is outside the cached page: the read needs the hung wire
    // and must come back as a timeout, not block the REPL.
    let started = std::time::Instant::now();
    r.handle("x[20]", &mut out);
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "hung backend stalled the session"
    );
    assert!(out.contains("timed out"), "{out}");
}
