//! Property-based tests on the core invariants: lexer totality, layout
//! monotonicity, generator algebra (alternation/count/sum laws, range
//! lengths, filter equivalence, selection), and C-arithmetic agreement
//! with a reference evaluator. A final fuzz property feeds arbitrary
//! strings through the whole pipeline and requires graceful errors.

use duel::core::Session;
use duel::target::{scenario, SimTarget, Target};
use duel_ctype::{Abi, Field, Prim, TypeTable};
use proptest::prelude::*;

fn values_of(t: &mut dyn Target, src: &str) -> Vec<i64> {
    let mut s = Session::new(t);
    s.eval(src)
        .unwrap_or_else(|e| panic!("`{src}` failed: {e}"))
        .into_iter()
        .filter_map(|l| match l {
            duel::core::OutputLine::Value { value, .. } => value.parse::<i64>().ok(),
            _ => None,
        })
        .collect()
}

/// Renders a list of ints as a DUEL alternation `(a,b,c)`.
fn alt_expr(vals: &[i32]) -> String {
    let body: Vec<String> = vals.iter().map(|v| format!("({v})")).collect();
    format!("({})", body.join(","))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, ..ProptestConfig::default()
    })]

    // ---- lexer -------------------------------------------------------

    #[test]
    fn lexer_never_panics(s in "\\PC{0,60}") {
        let _ = duel::core::lexer::lex(&s);
    }

    #[test]
    fn integer_literals_roundtrip(v in 0u32..=i32::MAX as u32) {
        let toks = duel::core::lexer::lex(&v.to_string()).unwrap();
        prop_assert_eq!(
            &toks[0].tok,
            &duel::core::token::Tok::Int(v as i64)
        );
    }

    // ---- layout --------------------------------------------------------

    #[test]
    fn struct_layout_invariants(sizes in prop::collection::vec(0u8..3, 1..12)) {
        // Fields drawn from {char, int, double}: offsets must be
        // monotone, aligned, non-overlapping; total size a multiple of
        // the alignment.
        let mut tt = TypeTable::new();
        let abi = Abi::lp64();
        let prims = [Prim::Char, Prim::Int, Prim::Double];
        let fields: Vec<Field> = sizes
            .iter()
            .enumerate()
            .map(|(i, k)| {
                Field::new(format!("f{i}"), tt.prim(prims[*k as usize]))
            })
            .collect();
        let (rid, _) = tt.declare_struct("p");
        tt.define_record(rid, fields.clone());
        let l = tt.record_layout(rid, &abi).unwrap();
        let mut prev_end = 0u64;
        for (f, fl) in fields.iter().zip(l.fields.iter()) {
            let fsize = tt.size_of(f.ty, &abi).unwrap();
            let falign = tt.align_of(f.ty, &abi).unwrap();
            prop_assert_eq!(fl.offset % falign, 0, "misaligned field");
            prop_assert!(fl.offset >= prev_end, "overlapping fields");
            prev_end = fl.offset + fsize;
        }
        prop_assert!(l.size >= prev_end);
        prop_assert_eq!(l.size % l.align, 0);
    }

    // ---- generator algebra ----------------------------------------------

    #[test]
    fn alternation_concatenates(
        a in prop::collection::vec(-50i32..50, 0..6),
        b in prop::collection::vec(-50i32..50, 1..6),
    ) {
        // values(A,B) == values(A) ++ values(B).
        let mut t = scenario::scan_array();
        if a.is_empty() {
            let got = values_of(&mut t, &alt_expr(&b));
            let want: Vec<i64> = b.iter().map(|v| *v as i64).collect();
            prop_assert_eq!(got, want);
        } else {
            let expr = format!("{},{}", alt_expr(&a), alt_expr(&b));
            let got = values_of(&mut t, &expr);
            let want: Vec<i64> = a
                .iter()
                .chain(b.iter())
                .map(|v| *v as i64)
                .collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn count_and_sum_laws(vals in prop::collection::vec(-100i32..100, 1..10)) {
        let mut t = scenario::scan_array();
        let e = alt_expr(&vals);
        let count = values_of(&mut t, &format!("#/{e}"));
        prop_assert_eq!(count, vec![vals.len() as i64]);
        let sum = values_of(&mut t, &format!("+/{e}"));
        let want: i64 = vals.iter().map(|v| *v as i64).sum();
        prop_assert_eq!(sum, vec![want]);
    }

    #[test]
    fn range_lengths(a in -100i64..100, b in -100i64..100) {
        let mut t = scenario::scan_array();
        let got = values_of(&mut t, &format!("#/(({a})..({b}))"));
        let want = if a <= b { b - a + 1 } else { 0 };
        prop_assert_eq!(got, vec![want]);
    }

    #[test]
    fn filter_equals_rust_filter(
        vals in prop::collection::vec(-100i32..100, 1..10),
        k in -100i32..100,
    ) {
        let mut t = scenario::scan_array();
        let got =
            values_of(&mut t, &format!("{} >? ({k})", alt_expr(&vals)));
        let want: Vec<i64> = vals
            .iter()
            .filter(|v| **v > k)
            .map(|v| *v as i64)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn select_picks_by_index(
        vals in prop::collection::vec(-100i32..100, 1..8),
        picks in prop::collection::vec(0usize..16, 1..6),
    ) {
        let mut t = scenario::scan_array();
        let idx: Vec<String> =
            picks.iter().map(|p| p.to_string()).collect();
        let got = values_of(
            &mut t,
            &format!("{}[[{}]]", alt_expr(&vals), idx.join(",")),
        );
        let want: Vec<i64> = picks
            .iter()
            .filter_map(|p| vals.get(*p).map(|v| *v as i64))
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn imply_multiplies_counts(
        n in 1i64..20,
        m in 1i64..20,
    ) {
        let mut t = scenario::scan_array();
        let got =
            values_of(&mut t, &format!("#/((1..{n}) => (1..{m}))"));
        prop_assert_eq!(got, vec![n * m]);
    }

    // ---- C arithmetic agrees with a reference -----------------------------

    #[test]
    fn int_arithmetic_matches_wrapping_i32(
        a in -10_000i32..10_000,
        b in -10_000i32..10_000,
        op in 0u8..5,
    ) {
        let (sym, want) = match op {
            0 => ("+", a.wrapping_add(b)),
            1 => ("-", a.wrapping_sub(b)),
            2 => ("*", a.wrapping_mul(b)),
            3 => ("&", a & b),
            _ => ("^", a ^ b),
        };
        let mut t = scenario::scan_array();
        let got =
            values_of(&mut t, &format!("({a}) {sym} ({b})"));
        prop_assert_eq!(got, vec![want as i64]);
    }

    #[test]
    fn division_matches_c(a in -10_000i32..10_000, b in 1i32..100) {
        let mut t = scenario::scan_array();
        let got = values_of(&mut t, &format!("({a}) / ({b})"));
        prop_assert_eq!(got, vec![(a / b) as i64]);
        let got = values_of(&mut t, &format!("({a}) % ({b})"));
        prop_assert_eq!(got, vec![(a % b) as i64]);
    }

    // ---- memory round trips -------------------------------------------------

    #[test]
    fn assignment_roundtrips_through_target(
        idx in 0u64..10,
        v in -1000i32..1000,
    ) {
        let mut t = scenario::range_array();
        {
            let mut s = Session::new(&mut t);
            s.eval(&format!("x[{idx}] = ({v}) ;")).unwrap();
        }
        let x = t.get_variable("x").unwrap();
        prop_assert_eq!(t.core.read_int(x.addr + idx * 4).unwrap(), v);
    }

    // ---- whole-pipeline fuzz --------------------------------------------------

    #[test]
    fn eval_never_panics_on_garbage(src in "[ -~]{0,40}") {
        let mut t = SimTarget::new(Abi::lp64());
        t.core.define_global_bytes("x", 64).unwrap();
        let mut s = Session::new(&mut t);
        s.options.max_values = 1000;
        s.options.max_ticks = 100_000;
        // Errors are fine; panics and hangs are not.
        let _ = s.eval(&src);
    }

    #[test]
    fn eval_never_panics_on_expression_shaped_input(
        src in "(x|[0-9]{1,3}|\\.\\.|,|\\+|>\\?|=>|\\[|\\]|\\(|\\)|#/|-->|->| ){1,24}"
    ) {
        let mut t = scenario::scan_array();
        let mut s = Session::new(&mut t);
        s.options.max_values = 1000;
        s.options.max_ticks = 100_000;
        let _ = s.eval(&src);
    }
}

// ---------------------------------------------------------------------
// MetricsRegistry snapshot consistency under concurrency
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, ..ProptestConfig::default()
    })]

    /// Concurrent incrementers + a snapshotter. Each worker bumps the
    /// counter *before* observing the histogram, and `snapshot()` reads
    /// counters *before* histograms — so the robust cross-snapshot
    /// invariant is: a snapshot's histogram total never exceeds the
    /// *next* snapshot's counter (every observe is preceded by its
    /// add, and the later counter read sees at least those adds).
    /// Counters themselves must be monotonic across snapshots, and the
    /// quiescent totals exact.
    #[test]
    fn metrics_snapshots_are_consistent_under_concurrency(
        threads in 1usize..4,
        iters in 1u64..300,
    ) {
        use duel::target::MetricsRegistry;

        let reg = MetricsRegistry::new();
        // Register up front so the snapshotter always sees both names.
        reg.counter("ops");
        reg.histogram("lat");
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.counter("ops");
                    let h = reg.histogram("lat");
                    for i in 0..iters {
                        c.add(1);
                        h.observe(t as u64 * 1000 + i + 1);
                    }
                })
            })
            .collect();

        let snapshotter = {
            let reg = reg.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut prev_counter = 0u64;
                let mut prev_hist_total = 0u64;
                let mut rounds = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let s = reg.snapshot();
                    let ops = s.counter("ops").expect("ops registered");
                    let hist_total: u64 = s
                        .histograms
                        .iter()
                        .find(|(k, _)| k == "lat")
                        .map(|(_, b)| b.iter().sum())
                        .expect("lat registered");
                    assert!(
                        ops >= prev_counter,
                        "counter went backwards: {prev_counter} -> {ops}"
                    );
                    assert!(
                        prev_hist_total <= ops,
                        "histogram total {prev_hist_total} from an earlier snapshot \
                         exceeds a later counter {ops}"
                    );
                    prev_counter = ops;
                    prev_hist_total = hist_total;
                    rounds += 1;
                }
                rounds
            })
        };

        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let rounds = snapshotter.join().unwrap();
        prop_assert!(rounds > 0);

        // Quiescent: totals are exact and the histogram caught up.
        let s = reg.snapshot();
        let expected = threads as u64 * iters;
        prop_assert_eq!(s.counter("ops"), Some(expected));
        let hist_total: u64 = s.histograms[0].1.iter().sum();
        prop_assert_eq!(hist_total, expected);
    }
}
