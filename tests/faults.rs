//! Fault-tolerance integration suite: the debugger-interface layer
//! under injected faults, and the evaluator under hostile expressions.
//!
//! Three layers are exercised together:
//!
//! 1. [`duel::target::FaultTarget`] injects transient failures,
//!    poisoned address ranges, and truncated reads below the `Target`
//!    interface;
//! 2. [`duel::target::RetryTarget`] absorbs the transient class with
//!    bounded retries, while the fault class passes through;
//! 3. the evaluator's resource budgets (`max_ticks`, `max_depth`,
//!    `max_expand`, `timeout_ms`) terminate expressions that would
//!    otherwise never finish, naming the exhausted budget — and with
//!    `error_values` on, a fault confined to one element of a stream
//!    renders as `<error: ...>` while the rest of the stream continues.

use duel::core::{DuelError, Session};
use duel::gdbmi::{MiTarget, MockGdb};
use duel::target::{scenario, FaultConfig, FaultTarget, RetryPolicy, RetryTarget, Target};

// ---- transient failures and retries ------------------------------------

#[test]
fn transient_faults_are_retried_to_success() {
    let sim = scenario::scan_array();
    // The first two memory operations fail with a transient backend
    // error, then the target recovers.
    let faulty = FaultTarget::new(sim, FaultConfig::transient(2));
    let mut t = RetryTarget::with_policy(faulty, RetryPolicy::fast(3));
    {
        let mut s = Session::new(&mut t);
        assert_eq!(s.eval_lines("x[3..3]").unwrap(), vec!["x[3] = 7"]);
    }
    assert_eq!(t.retries(), 2, "both transients observable as retries");
}

#[test]
fn persistent_transient_failures_exhaust_the_retry_budget() {
    let sim = scenario::scan_array();
    let faulty = FaultTarget::new(sim, FaultConfig::transient(100));
    let mut t = RetryTarget::with_policy(faulty, RetryPolicy::fast(2));
    let mut s = Session::new(&mut t);
    let err = s.eval("x[3..3]").unwrap_err();
    match err {
        DuelError::Target(e) => assert!(e.is_transient(), "{e}"),
        other => panic!("expected a backend failure, got {other:?}"),
    }
}

// ---- permanent faults as per-element symbolic errors -------------------

#[test]
fn permanent_fault_yields_error_value_and_stream_continues() {
    let mut sim = scenario::scan_array();
    let x = sim.get_variable("x").unwrap();
    // Poison exactly x[3]; the rest of the array stays readable.
    let mut t = FaultTarget::new(sim, FaultConfig::poisoned(x.addr + 12, 4));
    let mut s = Session::new(&mut t);
    s.options.error_values = true;
    let lines = s.eval_lines("x[0..5]").unwrap();
    assert_eq!(lines.len(), 6, "{lines:?}");
    assert_eq!(lines[2], "x[2] = 102");
    assert!(
        lines[3].starts_with("x[3] = <error:"),
        "poisoned element should render symbolically: {lines:?}"
    );
    assert_eq!(lines[4], "x[4] = 104");
}

#[test]
fn strict_mode_stops_at_the_first_fault() {
    let mut sim = scenario::scan_array();
    let x = sim.get_variable("x").unwrap();
    let mut t = FaultTarget::new(sim, FaultConfig::poisoned(x.addr + 12, 4));
    let mut s = Session::new(&mut t);
    // Default options: the paper's behaviour — values until the error,
    // then the error.
    let (lines, err) = s.eval_partial("x[0..5]").unwrap();
    assert_eq!(lines.len(), 3, "{lines:?}");
    let err = err.expect("the poisoned element must fault");
    assert!(err.is_fault(), "{err}");
}

#[test]
fn error_values_round_trip_the_mi_wire() {
    // The same fault-tolerant display works when the fault is reported
    // by a debugger over gdb/MI (taxonomy preserved through `^error`
    // records).
    let mut mi = MiTarget::connect(MockGdb::new(scenario::scan_array())).unwrap();
    let mut s = Session::new(&mut mi);
    s.options.error_values = true;
    // x[100000] is an lvalue far past the arena: reading it faults.
    let lines = s.eval_lines("x[99999..100000]").unwrap();
    assert_eq!(lines.len(), 2, "{lines:?}");
    assert!(lines[0].contains("<error:"), "{lines:?}");
    assert!(lines[1].contains("<error:"), "{lines:?}");
}

#[test]
fn truncated_reads_are_reported_with_partial_length() {
    let mut sim = scenario::scan_array();
    let x = sim.get_variable("x").unwrap();
    let cfg = FaultConfig {
        truncate_reads_above: Some(2),
        ..FaultConfig::default()
    };
    let mut t = FaultTarget::new(sim, cfg);
    let mut buf = [0u8; 4];
    let err = t.get_bytes(x.addr, &mut buf).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("wanted 4"), "{msg}");
    assert!(!err.is_fault() && err.is_transient(), "{msg}");
}

// ---- resource budgets ---------------------------------------------------

#[test]
fn step_budget_terminates_infinite_while() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    s.options.max_ticks = 10_000;
    let err = s.eval("while (1) 1").unwrap_err();
    match &err {
        DuelError::BudgetExceeded { budget, limit, .. } => {
            assert_eq!(budget, "step");
            assert_eq!(*limit, 10_000);
        }
        other => panic!("expected a budget error, got {other:?}"),
    }
    assert!(err.to_string().contains("step budget of 10000"), "{err}");
}

#[test]
fn time_budget_terminates_infinite_while() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    s.options.timeout_ms = 20;
    s.options.max_ticks = u64::MAX;
    let err = s.eval("while (1) 1 ;").unwrap_err();
    match &err {
        DuelError::BudgetExceeded { budget, limit, .. } => {
            assert_eq!(budget, "time");
            assert_eq!(*limit, 20);
        }
        other => panic!("expected a time budget error, got {other:?}"),
    }
}

#[test]
fn depth_budget_bounds_generator_nesting() {
    let mut t = scenario::scan_array();
    let mut s = Session::new(&mut t);
    s.options.max_depth = 8;
    // Shallow expressions still evaluate under the same limit...
    assert_eq!(s.eval_lines("1+2").unwrap(), vec!["3"]);
    // ...but nesting past the budget is refused before it can eat the
    // native stack.
    let err = s
        .eval("1+(1+(1+(1+(1+(1+(1+(1+(1+(1+1)))))))))")
        .unwrap_err();
    match &err {
        DuelError::BudgetExceeded { budget, .. } => assert_eq!(budget, "depth"),
        other => panic!("expected a depth budget error, got {other:?}"),
    }
}

// ---- cyclic structures under `-->` --------------------------------------

/// Makes the scenario's `L` list circular (last node's `next` points
/// back at the head) and returns the target.
fn cyclic_list() -> duel::target::SimTarget {
    let mut t = scenario::linked_lists();
    let (rid, _) = t.core.types.declare_struct("list");
    let layout = t.core.types.record_layout(rid, &t.core.abi).unwrap();
    let next_off = layout.fields[1].offset;
    let l_var = t.get_variable("L").unwrap();
    let head = t.core.read_ptr(l_var.addr).unwrap();
    let mut node = head;
    loop {
        let next = t.core.read_ptr(node + next_off).unwrap();
        if next == 0 {
            break;
        }
        node = next;
    }
    t.core.write_ptr(node + next_off, head).unwrap();
    t
}

#[test]
fn cycle_check_terminates_a_circular_list() {
    let mut t = cyclic_list();
    let mut s = Session::new(&mut t);
    // The visited set sees the back-edge: exactly the 12 distinct
    // nodes are produced.
    assert_eq!(s.eval_lines("L-->next->value").unwrap().len(), 12);
}

#[test]
fn expansion_budget_terminates_a_circular_list_without_cycle_check() {
    let mut t = cyclic_list();
    let mut s = Session::new(&mut t);
    // The paper's implementation "does not handle cycles"; with the
    // visited set off, the expansion budget is the backstop.
    s.options.dfs_cycle_check = false;
    s.options.max_expand = 50;
    let err = s.eval("L-->next->value").unwrap_err();
    match &err {
        DuelError::BudgetExceeded { budget, limit, sym } => {
            assert_eq!(budget, "expansion");
            assert_eq!(*limit, 50);
            assert!(
                sym.contains("next"),
                "the diagnostic should name the offending walk: {sym}"
            );
        }
        other => panic!("expected an expansion budget error, got {other:?}"),
    }
    assert!(err.to_string().contains("expansion budget of 50"), "{err}");
}

// ---- wide-scalar and probe-flake regressions ---------------------------

#[test]
fn wide_scalars_are_rejected_on_big_endian_not_truncated() {
    use duel::ctype::Abi;
    use duel::target::{value_io, SimTarget, TargetError};
    // Regression: `read_uint` with size > 8 used to keep only the first
    // 8 bytes it iterated — on big-endian targets those are the
    // *high-order* bytes, so a 16-byte scalar quietly collapsed to its
    // top half. Both directions must refuse the width instead.
    let mut t = SimTarget::new(Abi::ilp32_be());
    let addr = t.core.alloc(16, 16).unwrap();
    t.core
        .mem
        .write(addr, &[0xAB; 16])
        .expect("seed the wide slot");
    assert_eq!(
        value_io::read_uint(&mut t, addr, 16),
        Err(TargetError::UnsupportedWidth { bytes: 16 })
    );
    assert_eq!(
        value_io::write_uint(&mut t, addr, 0x1234, 16),
        Err(TargetError::UnsupportedWidth { bytes: 16 })
    );
    // A refused write leaves the destination untouched.
    let mut buf = [0u8; 16];
    t.core.mem.read(addr, &mut buf).unwrap();
    assert_eq!(buf, [0xAB; 16]);
    // In-range widths still work, in big-endian byte order.
    value_io::write_uint(&mut t, addr, 0x0102_0304, 4).unwrap();
    assert_eq!(value_io::read_uint(&mut t, addr, 4), Ok(0x0102_0304));
}

#[test]
fn zero_width_sign_extend_is_zero_not_overflow() {
    use duel::target::value_io;
    // Regression: `sign_extend(raw, 0)` computed `raw << 64`.
    assert_eq!(value_io::sign_extend(u64::MAX, 0), 0);
    assert_eq!(value_io::sign_extend(0xFF, 1), -1);
}

#[test]
fn probe_flakes_never_poison_the_cached_prefix() {
    use duel::target::{CacheConfig, CachedTarget};
    // scan_array's arena is 240 bytes; with 4096-byte pages every page
    // fetch faults at the arena edge and the cache bisects (~13 wire
    // ops) for the readable prefix. `fail_every: 7` guarantees every
    // single bisection is interrupted by a transient. The old code
    // conflated that transient with the fault class, so each flake
    // *shrank* the cached prefix and the shrunk page was served for the
    // rest of the epoch; the fixed code aborts the probe, caches
    // nothing, and serves the access through the exact-read fallback
    // (re-driven by RetryTarget when the fallback itself flakes) — so
    // every value stays correct and the cache holds no damaged page.
    // Recovery once the flakes stop (the full 240-byte prefix being
    // cached by a clean re-probe) is pinned down by the unit test in
    // `crates/target/src/cache.rs`.
    let flaky = FaultTarget::new(
        scenario::scan_array(),
        FaultConfig {
            fail_every: 7,
            ..FaultConfig::default()
        },
    );
    let cached = CachedTarget::with_config(
        flaky,
        CacheConfig {
            page_size: 4096,
            ..CacheConfig::default()
        },
    );
    let mut t = RetryTarget::with_policy(cached, RetryPolicy::fast(5));
    let mut s = Session::new(&mut t);
    assert_eq!(
        s.eval_lines("x[1..4,8,12..50] >? 5 <? 10").unwrap(),
        vec!["x[3] = 7", "x[18] = 9", "x[47] = 6"]
    );
    for _ in 0..5 {
        assert_eq!(s.eval_lines("x[..60]").unwrap().len(), 60);
    }
    let cache = t.inner_mut();
    assert!(
        cache.inner_mut().injected() > 0,
        "the flakes must actually have fired"
    );
    for (base, bytes) in cache.resident_pages() {
        assert_eq!(
            bytes.len(),
            240,
            "page {base:#x}: a flaked probe must never cache a shrunk prefix"
        );
    }
}
