//! Experiment E9: the interface is narrow enough to swap backends.
//!
//! The paper reports that porting DUEL from gdb 4.2 to gdb 4.6 changed
//! only 4 lines, because everything flows through the narrow interface.
//! Here the same DUEL commands run against three backends —
//!
//! 1. the simulated debuggee directly ([`duel::target::SimTarget`]),
//! 2. the gdb/MI adapter over the mock MI server
//!    ([`duel::gdbmi::MiTarget`]), exercising the full wire protocol,
//! 3. the mini-C source-level debugger ([`duel::minic::Debugger`]),
//!
//! — and must produce identical output.

use duel::core::Session;
use duel::gdbmi::{MiTarget, MockGdb};
use duel::target::{scenario, Target};

fn run(t: &mut dyn Target, src: &str) -> Vec<String> {
    let mut s = Session::new(t);
    s.eval_lines(src)
        .unwrap_or_else(|e| panic!("`{src}` failed: {e}"))
}

/// The E1 subset used for cross-backend comparison (scan-array state).
const SCAN_CASES: &[&str] = &[
    "x[1..4,8,12..50] >? 5 <? 10",
    "x[1..3] == 7",
    "(1..3)+(5,9)",
    "1 + (double)3/2",
    "#/(x[..60] >? 100)",
    "+/x[1..3]",
];

#[test]
fn sim_and_mi_agree_on_scan_array() {
    for case in SCAN_CASES {
        let mut direct = scenario::scan_array();
        let expected = run(&mut direct, case);
        let mut mi = MiTarget::connect(MockGdb::new(scenario::scan_array())).unwrap();
        let got = run(&mut mi, case);
        assert_eq!(got, expected, "case `{case}` diverged over MI");
    }
}

#[test]
fn sim_and_mi_agree_on_hash_table() {
    let cases = [
        "(hash[..1024] !=? 0)->scope >? 5",
        "hash[0]-->next->scope",
        "hash[1,9]->(scope,name)",
    ];
    for case in cases {
        let mut direct = scenario::hash_table_basic();
        let expected = run(&mut direct, case);
        let mut mi = MiTarget::connect(MockGdb::new(scenario::hash_table_basic())).unwrap();
        let got = run(&mut mi, case);
        assert_eq!(got, expected, "case `{case}` diverged over MI");
    }
}

#[test]
fn mi_backend_supports_writes_and_aliases() {
    let mut mi = MiTarget::connect(MockGdb::new(scenario::scan_array())).unwrap();
    let mut s = Session::new(&mut mi);
    // A DUEL declaration allocates in the target over MI.
    s.eval("int i; i = 41; i + 1").unwrap();
    // `i + 1` renders symbolically identical to the input, so only
    // the value prints.
    assert_eq!(s.eval_lines("i + 1").unwrap(), vec!["42"]);
    // Assignment through a generator writes target memory over MI.
    s.eval("x[0..2] = 0 ;").unwrap();
    assert_eq!(
        s.eval_lines("x[0..2]").unwrap(),
        vec!["x[0] = 0", "x[1] = 0", "x[2] = 0"]
    );
}

#[test]
fn mi_backend_calls_functions_with_output() {
    let mut mi = MiTarget::connect(MockGdb::new(scenario::scan_array())).unwrap();
    let mut s = Session::new(&mut mi);
    let out = s.eval("printf(\"%d %d, \", (3,4), 5..7)").unwrap();
    let stdout: String = out
        .iter()
        .filter_map(|l| match l {
            duel::core::OutputLine::Stdout(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(stdout, "3 5, 3 6, 3 7, 4 5, 4 6, 4 7, ");
}

#[test]
fn minic_debugger_is_a_full_backend() {
    // Build the paper's symbol table by *running a C program*, then
    // query it with DUEL — the complete paper workflow.
    let src = r#"
struct symbol { char *name; int scope; struct symbol *next; };
struct symbol *hash[1024];
char *names[6];
int main() {
    int i;
    struct symbol *s;
    names[0] = "alpha"; names[1] = "beta"; names[2] = "gamma";
    names[3] = "delta"; names[4] = "deep"; names[5] = "top";
    for (i = 0; i < 4; i++) {
        s = (struct symbol *)malloc(sizeof(struct symbol));
        s->name = names[3 - i];
        s->scope = i + 1;
        s->next = hash[0];
        hash[0] = s;
    }
    s = (struct symbol *)malloc(sizeof(struct symbol));
    s->name = names[4]; s->scope = 7; s->next = 0;
    hash[42] = s;
    s = (struct symbol *)malloc(sizeof(struct symbol));
    s->name = names[5]; s->scope = 8; s->next = 0;
    hash[529] = s;
    return 0;                                   /* line 23 */
}
"#;
    let mut dbg = duel::minic::Debugger::new(src).unwrap();
    dbg.add_breakpoint(23);
    assert_eq!(
        dbg.run().unwrap(),
        duel::minic::StopReason::Breakpoint { line: 23 }
    );
    let mut s = Session::new(&mut dbg);
    assert_eq!(
        s.eval_lines("(hash[..1024] !=? 0)->scope >? 5").unwrap(),
        vec!["hash[42]->scope = 7", "hash[529]->scope = 8"]
    );
    assert_eq!(
        s.eval_lines("hash[0]-->next->scope").unwrap(),
        vec![
            "hash[0]->scope = 4",
            "hash[0]->next->scope = 3",
            "hash[0]->next->next->scope = 2",
            "hash[0]->next->next->next->scope = 1",
        ]
    );
    // Locals of the stopped frame are visible to DUEL.
    assert_eq!(s.eval_lines("i + 0").unwrap(), vec!["4"]);
}
